package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"

	"adaptivetoken/internal/metrics"
)

// Label is one Prometheus label pair.
type Label struct {
	Key, Value string
}

// PromWriter encodes metrics in the Prometheus text exposition format
// (version 0.0.4): the format every Prometheus-compatible scraper parses.
// Errors stick: after the first write error every call is a no-op and Err
// returns it.
type PromWriter struct {
	w    *bufio.Writer
	err  error
	seen map[string]bool
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w)}
}

// Counter writes one counter sample with optional labels.
func (p *PromWriter) Counter(name, help string, v float64, labels ...Label) {
	p.header(name, help, "counter")
	p.sample(name, "", labels, v)
}

// Gauge writes one gauge sample with optional labels.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...Label) {
	p.header(name, help, "gauge")
	p.sample(name, "", labels, v)
}

// CounterVec writes one TYPE/HELP header followed by a sample per
// (labels, value) pair — the per-kind message counters.
func (p *PromWriter) CounterVec(name, help string, samples []metrics.KindCount, labelKey string, labels ...Label) {
	p.header(name, help, "counter")
	for _, kc := range samples {
		ls := make([]Label, 0, len(labels)+1)
		ls = append(ls, Label{Key: labelKey, Value: kc.Kind})
		ls = append(ls, labels...)
		p.sample(name, "", ls, float64(kc.Count))
	}
}

// Histogram writes h in Prometheus histogram form: cumulative _bucket
// samples with le bounds at the log₂ bucket upper edges, then _sum and
// _count. Buckets are emitted up to the last non-empty one plus the +Inf
// bucket, so the series stays compact and the cumulative counts are
// monotone by construction.
func (p *PromWriter) Histogram(name, help string, h *metrics.Histogram, labels ...Label) {
	p.header(name, help, "histogram")
	var cum int64
	last := h.NonEmptyBuckets()
	for i := 0; i < last; i++ {
		cum += h.Bucket(i)
		le := strconv.FormatInt(metrics.BucketUpper(i), 10)
		p.sample(name+"_bucket", le, labels, float64(cum))
	}
	p.sample(name+"_bucket", "+Inf", labels, float64(h.Count()))
	p.sample(name+"_sum", "", labels, float64(h.Sum()))
	p.sample(name+"_count", "", labels, float64(h.Count()))
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// Flush writes any buffered output and returns the sticky error.
func (p *PromWriter) Flush() error {
	if p.err == nil {
		p.err = p.w.Flush()
	}
	return p.err
}

// header writes the HELP/TYPE preamble, once per metric name — a writer
// fed by several exporters (one per shard) must not repeat it, because the
// exposition format forbids duplicate HELP/TYPE lines.
func (p *PromWriter) header(name, help, typ string) {
	if p.err != nil {
		return
	}
	if p.seen[name] {
		return
	}
	if p.seen == nil {
		p.seen = make(map[string]bool)
	}
	p.seen[name] = true
	if help != "" {
		p.writeString("# HELP " + name + " " + escapeHelp(help) + "\n")
	}
	p.writeString("# TYPE " + name + " " + typ + "\n")
}

// sample writes one `name{labels,le} value` line. le, when non-empty, is
// appended as the histogram bucket bound label.
func (p *PromWriter) sample(name, le string, labels []Label, v float64) {
	if p.err != nil {
		return
	}
	p.writeString(name)
	if len(labels) > 0 || le != "" {
		p.writeString("{")
		for i, l := range labels {
			if i > 0 {
				p.writeString(",")
			}
			p.writeString(l.Key + "=\"" + escapeLabel(l.Value) + "\"")
		}
		if le != "" {
			if len(labels) > 0 {
				p.writeString(",")
			}
			p.writeString("le=\"" + le + "\"")
		}
		p.writeString("}")
	}
	p.writeString(" " + formatValue(v) + "\n")
}

func (p *PromWriter) writeString(s string) {
	if p.err != nil {
		return
	}
	_, p.err = p.w.WriteString(s)
}

// formatValue renders v the way Prometheus expects: integral values
// without an exponent, the rest in shortest form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline. Invalid UTF-8 bytes become U+FFFD — the format
// requires valid UTF-8.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") && utf8.ValidString(s) {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are fine
// in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
