package telemetry

import (
	"strconv"
	"time"

	"adaptivetoken/internal/metrics"
	"adaptivetoken/internal/transport"
)

// Exporter renders one process's observability state as Prometheus text:
// the per-kind message counters (one series for every metrics.KindSlot
// kind, present or not, so scrapers see a stable schema), the tracer's
// event counters and latency histograms, and process uptime. It is the
// standard /metrics source for ringnode and core.WithMetricsAddr.
type Exporter struct {
	// Tracer supplies span histograms and event counters; optional.
	Tracer *Tracer
	// Messages returns the current per-kind dispatch counts (sorted);
	// called once per scrape. Optional.
	Messages func() []metrics.KindCount
	// Node is this process's ring position, exported as a gauge label
	// (use -1 for an aggregate endpoint covering a whole cluster).
	Node int
	// Shard, when non-empty, adds a shard="<Shard>" label to every series
	// the exporter writes — the sharded layer's per-ring view. Several
	// exporters with distinct Shard values can share one PromWriter; the
	// writer deduplicates the HELP/TYPE headers.
	Shard string
	// Start anchors the uptime gauge; zero means "when the exporter was
	// first scraped".
	Start time.Time
	// Transport returns the hardened TCP endpoint's counter snapshot;
	// called once per scrape. Optional — the transport series are emitted
	// at zero when nil (zero-overlay: in-process channel clusters expose
	// the same schema as TCP deployments, so one scrape config and one
	// dashboard cover both).
	Transport func() transport.Stats
	// Extra, when set, appends arbitrary additional series after the
	// standard ones — the hook the client-load mode uses for its latency
	// histograms and session counters.
	Extra func(*PromWriter)
}

// WriteMetrics encodes the current state onto p. It has the signature
// NewServer expects.
func (e *Exporter) WriteMetrics(p *PromWriter) {
	if e.Start.IsZero() {
		e.Start = time.Now()
	}
	sl := e.shardLabel()
	p.Gauge("adaptivetoken_node_info",
		"Ring position of this process (value is always 1).",
		1, append([]Label{{Key: "node", Value: nodeLabel(e.Node)}}, sl...)...)
	p.Gauge("adaptivetoken_uptime_seconds",
		"Seconds since this exporter started.",
		time.Since(e.Start).Seconds(), sl...)

	if e.Messages != nil {
		p.CounterVec("adaptivetoken_messages_total",
			"Protocol messages dispatched, by kind (includes the dropped/duplicated/delayed fault counters).",
			CompleteKinds(e.Messages()), "kind", sl...)
	}

	if tr := e.Tracer; tr != nil {
		st := tr.Stats()
		p.Counter("adaptivetoken_grants_total",
			"Token grants observed.", float64(st.Grants), sl...)
		p.Counter("adaptivetoken_requests_total",
			"Issued (non-coalesced) token requests observed.", float64(st.Requests), sl...)
		p.Counter("adaptivetoken_faults_total",
			"Injected faults observed.", float64(st.Faults), sl...)
		p.Counter("adaptivetoken_trace_records_total",
			"Trace records written to the ring buffer.", float64(st.Total), sl...)
		p.Counter("adaptivetoken_trace_dropped_total",
			"Trace records lost to ring wrap-around.", float64(st.Dropped), sl...)

		resp := tr.RespHist()
		p.Histogram("adaptivetoken_responsiveness_time_units",
			"Definition 3 responsiveness intervals, in protocol time units.", &resp, sl...)
		wait := tr.WaitHist()
		p.Histogram("adaptivetoken_wait_time_units",
			"Request-to-grant waiting time, in protocol time units.", &wait, sl...)
		hold := tr.HoldHist()
		p.Histogram("adaptivetoken_token_hold_time_units",
			"Token possession time per holder, in protocol time units.", &hold, sl...)
		hops := tr.HopsHist()
		p.Histogram("adaptivetoken_token_forwards_per_grant",
			"Token-bearing message deliveries between consecutive grants.", &hops, sl...)
	}

	var ts transport.Stats
	if e.Transport != nil {
		ts = e.Transport()
	}
	p.Gauge("adaptivetoken_transport_queue_depth",
		"Envelopes sitting in bounded per-peer outbound queues right now.",
		float64(ts.QueueDepth), sl...)
	p.Counter("adaptivetoken_transport_enqueued_total",
		"Envelopes accepted into outbound queues.", float64(ts.Enqueued), sl...)
	p.Counter("adaptivetoken_transport_frames_total",
		"Frames written to peer sockets.", float64(ts.Frames), sl...)
	p.Counter("adaptivetoken_transport_flushes_total",
		"Socket writes (each flushing one batch of frames).", float64(ts.Flushes), sl...)
	p.Counter("adaptivetoken_transport_batched_writes_total",
		"Socket writes that carried more than one frame.", float64(ts.BatchedWrites), sl...)
	p.Counter("adaptivetoken_transport_dropped_backpressure_total",
		"Cheap envelopes dropped at a full bounded queue (drop policy).",
		float64(ts.DroppedBackpressure), sl...)
	p.Counter("adaptivetoken_transport_dropped_write_error_total",
		"Envelopes discarded when a peer connection broke mid-batch (at-most-once).",
		float64(ts.DroppedWriteError), sl...)
	p.Counter("adaptivetoken_transport_reconnects_total",
		"Peer connections re-established after a write or read failure.",
		float64(ts.Reconnects), sl...)
	p.Counter("adaptivetoken_transport_dial_retries_total",
		"Failed dial attempts retried with jittered backoff.",
		float64(ts.DialRetries), sl...)

	if e.Extra != nil {
		e.Extra(p)
	}
}

// shardLabel returns the shard label set (empty when unsharded).
func (e *Exporter) shardLabel() []Label {
	if e.Shard == "" {
		return nil
	}
	return []Label{{Key: "shard", Value: e.Shard}}
}

// CompleteKinds overlays counts onto the full fast-slot schema: the result
// has one entry per metrics.SlotKinds kind (zero when absent) plus any
// extra kinds, sorted.
func CompleteKinds(counts []metrics.KindCount) []metrics.KindCount {
	slots := metrics.SlotKinds()
	out := make([]metrics.KindCount, 0, len(slots)+len(counts))
	i, j := 0, 0
	for i < len(slots) || j < len(counts) {
		switch {
		case j >= len(counts) || (i < len(slots) && slots[i] < counts[j].Kind):
			out = append(out, metrics.KindCount{Kind: slots[i]})
			i++
		case i >= len(slots) || counts[j].Kind < slots[i]:
			out = append(out, counts[j])
			j++
		default: // equal
			out = append(out, counts[j])
			i++
			j++
		}
	}
	return out
}

// nodeLabel renders the ring position, with -1 standing for a whole
// cluster endpoint.
func nodeLabel(n int) string {
	if n == -1 {
		return "cluster"
	}
	return strconv.Itoa(n)
}
