package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"adaptivetoken/internal/host"
	"adaptivetoken/internal/metrics"
	"adaptivetoken/internal/protocol"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	tr := NewTracer(Config{N: 3, Capacity: 256})
	tr.OnStep(host.Step{Kind: host.StepBootstrap, Node: 0})
	tr.OnStep(host.Step{At: 1, Kind: host.StepRequest, Node: 2})
	g := host.Step{At: 4, Kind: host.StepDeliver, Node: 2,
		Msg: &protocol.Message{Kind: protocol.MsgToken, From: 1, To: 2}}
	g.Effects.Granted = true
	tr.OnStep(g)

	msgs := metrics.NewMessages()
	msgs.IncSlot(metrics.KindSlot(int(protocol.MsgToken)))
	msgs.IncSlot(metrics.KindSlot(int(protocol.MsgSearch)))
	exp := &Exporter{
		Tracer:   tr,
		Messages: msgs.SnapshotSorted,
		Node:     -1,
	}
	srv, err := NewServer("127.0.0.1:0", exp.WriteMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	// Every fast-slot kind is present, even those never dispatched.
	for _, kind := range metrics.SlotKinds() {
		want := fmt.Sprintf("adaptivetoken_messages_total{kind=%q}", kind)
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing series %s", want)
		}
	}
	for _, want := range []string{
		`adaptivetoken_messages_total{kind="token"} 1`,
		"adaptivetoken_grants_total 1",
		"adaptivetoken_requests_total 1",
		"# TYPE adaptivetoken_responsiveness_time_units histogram",
		"adaptivetoken_responsiveness_time_units_count 1",
		`adaptivetoken_node_info{node="cluster"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	checkHistogramText(t, body, "adaptivetoken_responsiveness_time_units")

	code, body, _ = get(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	// A real (short) CPU profile round-trip.
	code, body, _ = get(t, base+"/debug/pprof/profile?seconds=1")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("/debug/pprof/profile = %d (%d bytes)", code, len(body))
	}
}

func TestNewServerErrors(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewServer("256.0.0.1:bad", func(*PromWriter) {}); err == nil {
		t.Fatal("bad addr accepted")
	}
}
