// Package telemetry is the observability subsystem: a low-overhead ring
// tracer that records typed span and event records off the host.Observer
// seam, streaming histograms for the latencies the paper measures, a
// Prometheus text exporter with an HTTP server (/metrics, /healthz,
// /debug/pprof/*), and timeline export as JSONL or Chrome/Perfetto
// trace_event JSON.
//
// The tracer attaches wherever an Observer does — the simulation driver
// (driver.Options.Observer), a live runtime (node.WithObserver), or a whole
// cluster (core.WithObserver / core.WithMetricsAddr) — and derives the
// paper's quantities from the step stream alone: request→grant wait spans,
// Definition 3 responsiveness intervals, token hold spans, token hops and
// forwards-per-grant. With no tracer attached the host's observer-off
// zero-allocation fast path is untouched; with one attached, steady-state
// recording is an index into a preallocated ring — O(1) amortized
// allocations per event (see DESIGN.md §9).
package telemetry

import "adaptivetoken/internal/sim"

// RecKind discriminates ring records.
type RecKind uint8

const (
	// RecWaitSpan is a completed request→grant wait at Node
	// (Start..At; matches metrics.Waits).
	RecWaitSpan RecKind = iota + 1
	// RecRespSpan is a completed Definition 3 responsiveness interval:
	// some node was ready from Start until the grant at At (matches
	// metrics.Responsiveness).
	RecRespSpan
	// RecHoldSpan is a completed token possession at Node: from the
	// token's arrival (or bootstrap) at Start to the step that sent it
	// onward at At.
	RecHoldSpan
	// RecRequest is an issued (non-coalesced) request at Node.
	RecRequest
	// RecGrant is a grant to Node; A carries the token forwards since
	// the previous grant.
	RecGrant
	// RecHop is a token-bearing message delivery: A = from, Node = to,
	// B = message kind.
	RecHop
	// RecProbe is a cheap (search/probe/want) message delivery:
	// A = from, Node = to, B = message kind.
	RecProbe
	// RecRecovery is a recovery-round message delivery: A = from,
	// Node = to, B = message kind.
	RecRecovery
	// RecFault is an injected fault: A = host.FaultKind, B = message
	// kind (drop/dup/delay) and Node the paused/resumed node.
	RecFault
	// RecSample is a periodic series point: A = ready count,
	// B = in-flight events, Node = current holder (-1 unknown).
	RecSample
)

// String returns the record kind's export name.
func (k RecKind) String() string {
	switch k {
	case RecWaitSpan:
		return "wait"
	case RecRespSpan:
		return "responsiveness"
	case RecHoldSpan:
		return "hold"
	case RecRequest:
		return "request"
	case RecGrant:
		return "grant"
	case RecHop:
		return "hop"
	case RecProbe:
		return "probe"
	case RecRecovery:
		return "recovery"
	case RecFault:
		return "fault"
	case RecSample:
		return "sample"
	}
	return "unknown"
}

// Record is one ring entry: a fixed-size value type so the ring is a flat
// preallocated array and recording never allocates. Field meaning is
// per-kind (see the RecKind constants); Start is set only for spans.
type Record struct {
	At    sim.Time
	Start sim.Time
	A, B  int64
	Node  int32
	Kind  RecKind
}

// Dur returns the span duration (0 for instant records).
func (r Record) Dur() sim.Time {
	switch r.Kind {
	case RecWaitSpan, RecRespSpan, RecHoldSpan:
		return r.At - r.Start
	}
	return 0
}
