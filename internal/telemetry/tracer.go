package telemetry

import (
	"sync"

	"adaptivetoken/internal/host"
	"adaptivetoken/internal/metrics"
	"adaptivetoken/internal/protocol"
	"adaptivetoken/internal/sim"
)

// Config sizes a Tracer.
type Config struct {
	// N is the ring size (number of nodes); per-node span state is a
	// flat array indexed by node id.
	N int
	// Capacity is the ring-buffer size in records; when full, the oldest
	// records are overwritten (DroppedRecords counts them). 0 means
	// DefaultCapacity.
	Capacity int
}

// DefaultCapacity holds ~2 MB of 40-byte records — several minutes of
// steady traffic on a busy ring before wrap-around.
const DefaultCapacity = 1 << 16

// Tracer records typed protocol events into a fixed-capacity ring buffer
// and maintains streaming histograms, implementing host.Observer. It
// derives spans from the step stream with the exact state machines the
// driver's metrics use, so exported span durations reproduce the run's
// summaries (tested in internal/bench).
//
// All methods are safe for concurrent use: a mutex serializes recording
// against scrapes and exports. Sim hosts call it single-threaded (the
// mutex is uncontended); live clusters already serialize observers.
type Tracer struct {
	mu sync.Mutex

	ring  []Record
	total uint64 // records ever written; ring index = total % len(ring)

	// Span state, mirrored from the step stream.
	waitStart []sim.Time // per node; -1 = no outstanding request
	holdStart []sim.Time // per node; -1 = not holding
	respStart sim.Time
	respOpen  bool
	ready     int
	hops      int64 // token forwards since the last grant

	// Streaming histograms (scraped by the Prometheus exporter).
	waitHist metrics.Histogram
	respHist metrics.Histogram
	holdHist metrics.Histogram
	hopsHist metrics.Histogram // forwards per grant

	grants   int64
	requests int64
	faults   int64
}

// NewTracer builds a tracer for an n-node ring.
func NewTracer(cfg Config) *Tracer {
	n := cfg.N
	if n < 1 {
		n = 1
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{
		ring:      make([]Record, capacity),
		waitStart: make([]sim.Time, n),
		holdStart: make([]sim.Time, n),
	}
	for i := range t.waitStart {
		t.waitStart[i] = -1
		t.holdStart[i] = -1
	}
	return t
}

// push appends one record, overwriting the oldest when the ring is full.
func (t *Tracer) push(r Record) {
	t.ring[t.total%uint64(len(t.ring))] = r
	t.total++
}

// OnStep implements host.Observer: it classifies the step, updates the
// span state machines, and records the resulting events.
func (t *Tracer) OnStep(s host.Step) {
	t.mu.Lock()
	defer t.mu.Unlock()
	node := s.Node
	switch s.Kind {
	case host.StepBootstrap:
		if t.inRange(node) {
			t.holdStart[node] = s.At
		}
	case host.StepRequest:
		t.requests++
		t.push(Record{At: s.At, Kind: RecRequest, Node: int32(node)})
		if t.inRange(node) && t.waitStart[node] < 0 {
			t.waitStart[node] = s.At
		}
		// Definition 3: an interval opens when the ready count rises
		// from zero (mirrors metrics.Responsiveness.RequestArrived).
		t.ready++
		if !t.respOpen {
			t.respOpen = true
			t.respStart = s.At
		}
	case host.StepDeliver:
		t.onDeliver(s)
	}
	if s.Effects.Granted {
		t.onGranted(s.At, node)
	}
	// A step that ships a token-bearing message closes the holder's
	// possession span.
	if t.inRange(node) && t.holdStart[node] >= 0 {
		for _, m := range s.Effects.Msgs {
			if m.Kind.Expensive() {
				dur := s.At - t.holdStart[node]
				t.push(Record{At: s.At, Start: t.holdStart[node], Kind: RecHoldSpan, Node: int32(node)})
				t.holdHist.Observe(int64(dur))
				t.holdStart[node] = -1
				break
			}
		}
	}
}

// onDeliver records message arrivals by class and opens possession spans
// on token arrival.
func (t *Tracer) onDeliver(s host.Step) {
	if s.Msg == nil {
		return
	}
	m := *s.Msg
	switch {
	case m.Kind.Expensive():
		t.hops++
		t.push(Record{At: s.At, Kind: RecHop, Node: int32(m.To), A: int64(m.From), B: int64(m.Kind)})
		if t.inRange(m.To) {
			t.holdStart[m.To] = s.At
		}
	case m.Kind == protocol.MsgRecoveryProbe || m.Kind == protocol.MsgRecoveryReply:
		t.push(Record{At: s.At, Kind: RecRecovery, Node: int32(m.To), A: int64(m.From), B: int64(m.Kind)})
	default:
		t.push(Record{At: s.At, Kind: RecProbe, Node: int32(m.To), A: int64(m.From), B: int64(m.Kind)})
	}
}

// onGranted closes the granted node's wait span and the open
// responsiveness interval (mirrors metrics.Responsiveness.Granted and
// metrics.Waits.Granted).
func (t *Tracer) onGranted(at sim.Time, node int) {
	t.grants++
	t.push(Record{At: at, Kind: RecGrant, Node: int32(node), A: t.hops})
	t.hopsHist.Observe(t.hops)
	t.hops = 0
	if t.inRange(node) && t.waitStart[node] >= 0 {
		t.push(Record{At: at, Start: t.waitStart[node], Kind: RecWaitSpan, Node: int32(node)})
		t.waitHist.Observe(int64(at - t.waitStart[node]))
		t.waitStart[node] = -1
	}
	if t.respOpen {
		t.push(Record{At: at, Start: t.respStart, Kind: RecRespSpan, Node: int32(node)})
		t.respHist.Observe(int64(at - t.respStart))
	}
	if t.ready > 0 {
		t.ready--
	}
	if t.ready > 0 {
		t.respOpen = true
		t.respStart = at
	} else {
		t.respOpen = false
	}
}

// OnFault implements host.Observer.
func (t *Tracer) OnFault(f host.FaultEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults++
	node := int32(f.Node)
	if f.Kind == host.FaultDrop || f.Kind == host.FaultDup || f.Kind == host.FaultDelay {
		node = int32(f.Msg.To)
	}
	t.push(Record{At: f.At, Kind: RecFault, Node: node, A: int64(f.Kind), B: int64(f.Msg.Kind)})
}

// Sample records one periodic series point: the current ready count,
// in-flight event count, and token holder (-1 if unknown).
func (t *Tracer) Sample(at sim.Time, ready, inFlight, holder int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.push(Record{At: at, Kind: RecSample, Node: int32(holder), A: int64(ready), B: int64(inFlight)})
}

func (t *Tracer) inRange(node int) bool {
	return node >= 0 && node < len(t.waitStart)
}

// Stats is a point-in-time summary of the tracer.
type Stats struct {
	// Recorded is the number of records currently held in the ring.
	Recorded int
	// Total is the number of records ever written.
	Total uint64
	// Dropped is how many old records wrap-around has overwritten.
	Dropped uint64
	// Grants, Requests and Faults count the respective events.
	Grants, Requests, Faults int64
}

// Stats returns the tracer's counters.
func (t *Tracer) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Stats{
		Total:    t.total,
		Grants:   t.grants,
		Requests: t.requests,
		Faults:   t.faults,
	}
	st.Recorded = int(st.Total)
	if st.Recorded > len(t.ring) {
		st.Recorded = len(t.ring)
		st.Dropped = st.Total - uint64(len(t.ring))
	}
	return st
}

// WaitHist returns a copy of the request→grant wait histogram.
func (t *Tracer) WaitHist() metrics.Histogram { return t.histCopy(&t.waitHist) }

// RespHist returns a copy of the responsiveness-interval histogram.
func (t *Tracer) RespHist() metrics.Histogram { return t.histCopy(&t.respHist) }

// HoldHist returns a copy of the token-hold-time histogram.
func (t *Tracer) HoldHist() metrics.Histogram { return t.histCopy(&t.holdHist) }

// HopsHist returns a copy of the forwards-per-grant histogram.
func (t *Tracer) HopsHist() metrics.Histogram { return t.histCopy(&t.hopsHist) }

func (t *Tracer) histCopy(h *metrics.Histogram) metrics.Histogram {
	t.mu.Lock()
	defer t.mu.Unlock()
	return *h
}

// Records calls fn for every record currently in the ring, oldest first,
// under the tracer's lock. fn must not call back into the tracer.
func (t *Tracer) Records(fn func(Record)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	start := uint64(0)
	count := t.total
	if count > n {
		start = t.total - n
		count = n
	}
	for i := uint64(0); i < count; i++ {
		fn(t.ring[(start+i)%n])
	}
}
