package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"adaptivetoken/internal/host"
	"adaptivetoken/internal/protocol"
	"adaptivetoken/internal/sim"
)

// step builds a minimal host.Step for tracer tests.
func step(at sim.Time, kind host.StepKind, node int) host.Step {
	return host.Step{At: at, Kind: kind, Node: node}
}

func deliver(at sim.Time, m protocol.Message) host.Step {
	return host.Step{At: at, Kind: host.StepDeliver, Node: m.To, Msg: &m}
}

func TestTracerSpans(t *testing.T) {
	tr := NewTracer(Config{N: 4, Capacity: 128})

	// Node 2 requests at t=10; token hops 0→1→2; node 2 granted at t=30.
	tr.OnStep(step(0, host.StepBootstrap, 0))
	tr.OnStep(step(10, host.StepRequest, 2))
	tok := protocol.Message{Kind: protocol.MsgToken, From: 0, To: 1}
	tr.OnStep(deliver(20, tok))
	tok2 := protocol.Message{Kind: protocol.MsgToken, From: 1, To: 2}
	grant := deliver(30, tok2)
	grant.Effects.Granted = true
	tr.OnStep(grant)

	var waits, resps, hops []Record
	tr.Records(func(r Record) {
		switch r.Kind {
		case RecWaitSpan:
			waits = append(waits, r)
		case RecRespSpan:
			resps = append(resps, r)
		case RecHop:
			hops = append(hops, r)
		}
	})
	if len(waits) != 1 || waits[0].Node != 2 || waits[0].Dur() != 20 {
		t.Fatalf("wait spans %+v, want one span node 2 dur 20", waits)
	}
	if len(resps) != 1 || resps[0].Dur() != 20 {
		t.Fatalf("resp spans %+v, want one span dur 20", resps)
	}
	if len(hops) != 2 {
		t.Fatalf("hops %+v, want 2", hops)
	}
	if h := tr.WaitHist(); h.Sum() != 20 {
		t.Fatalf("wait hist sum %d, want 20", h.Sum())
	}
	if h := tr.HopsHist(); h.Count() != 1 {
		t.Fatalf("hops hist count %d, want 1", h.Count())
	}
	st := tr.Stats()
	if st.Grants != 1 || st.Requests != 1 || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTracerHoldSpan(t *testing.T) {
	tr := NewTracer(Config{N: 2, Capacity: 64})
	tr.OnStep(step(0, host.StepBootstrap, 0))
	// Node 0 ships the token at t=7 → hold span [0,7].
	send := step(7, host.StepTimer, 0)
	send.Effects.Msgs = []protocol.Message{{Kind: protocol.MsgToken, From: 0, To: 1}}
	tr.OnStep(send)
	var holds []Record
	tr.Records(func(r Record) {
		if r.Kind == RecHoldSpan {
			holds = append(holds, r)
		}
	})
	if len(holds) != 1 || holds[0].Dur() != 7 || holds[0].Node != 0 {
		t.Fatalf("hold spans %+v, want one span node 0 dur 7", holds)
	}
	if h := tr.HoldHist(); h.Sum() != 7 {
		t.Fatalf("hold hist sum %d, want 7", h.Sum())
	}
}

func TestTracerRingWrapAround(t *testing.T) {
	tr := NewTracer(Config{N: 1, Capacity: 8})
	for i := 0; i < 20; i++ {
		tr.OnStep(step(sim.Time(i), host.StepRequest, 0))
	}
	st := tr.Stats()
	if st.Recorded != 8 {
		t.Fatalf("recorded %d, want 8 (ring capacity)", st.Recorded)
	}
	if st.Dropped != st.Total-8 {
		t.Fatalf("dropped %d, total %d", st.Dropped, st.Total)
	}
	// The survivors are the newest 8, oldest first.
	var ats []sim.Time
	tr.Records(func(r Record) { ats = append(ats, r.At) })
	if len(ats) != 8 || ats[0] >= ats[7] {
		t.Fatalf("ring order wrong: %v", ats)
	}
}

// TestTracerOnStepAmortizedZeroAlloc checks the enabled-tracing cost model:
// once the ring and per-node state are allocated, recording an event is
// allocation-free (the ring overwrites in place).
func TestTracerOnStepAmortizedZeroAlloc(t *testing.T) {
	tr := NewTracer(Config{N: 4, Capacity: 64})
	tr.OnStep(step(0, host.StepBootstrap, 0))
	var at sim.Time
	allocs := testing.AllocsPerRun(500, func() {
		at++
		tr.OnStep(step(at, host.StepRequest, int(at)%4))
	})
	if allocs != 0 {
		t.Fatalf("warm OnStep allocates %.1f/op, want 0", allocs)
	}
}

func TestTracerFaultAndSample(t *testing.T) {
	tr := NewTracer(Config{N: 2, Capacity: 16})
	tr.OnFault(host.FaultEvent{At: 5, Kind: host.FaultDrop,
		Msg: protocol.Message{Kind: protocol.MsgSearch, To: 1}})
	tr.Sample(10, 3, 17, 1)
	var fault, sample *Record
	tr.Records(func(r Record) {
		rc := r
		switch r.Kind {
		case RecFault:
			fault = &rc
		case RecSample:
			sample = &rc
		}
	})
	if fault == nil || fault.Node != 1 || host.FaultKind(fault.A) != host.FaultDrop {
		t.Fatalf("fault record %+v", fault)
	}
	if sample == nil || sample.A != 3 || sample.B != 17 || sample.Node != 1 {
		t.Fatalf("sample record %+v", sample)
	}
	if pts := tr.Series(); len(pts) != 1 || pts[0].Ready != 3 || pts[0].InFlight != 17 {
		t.Fatalf("series %+v", pts)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(Config{N: 2, Capacity: 16})
	tr.OnStep(step(3, host.StepRequest, 1))
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("lines %v", lines)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("invalid JSONL line %q: %v", lines[0], err)
	}
	if rec["kind"] != "request" || rec["at"] != float64(3) {
		t.Fatalf("record %v", rec)
	}
}

func TestWriteChromeTraceValid(t *testing.T) {
	tr := NewTracer(Config{N: 2, Capacity: 64})
	tr.OnStep(step(0, host.StepBootstrap, 0))
	tr.OnStep(step(1, host.StepRequest, 1))
	g := deliver(5, protocol.Message{Kind: protocol.MsgToken, From: 0, To: 1})
	g.Effects.Granted = true
	tr.OnStep(g)
	tr.Sample(6, 0, 2, 1)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, 2); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	phases := map[string]int{}
	names := map[string]int{}
	for _, ev := range parsed.TraceEvents {
		phases[ev["ph"].(string)]++
		names[ev["name"].(string)]++
	}
	if phases["M"] == 0 || phases["X"] == 0 || phases["i"] == 0 || phases["C"] == 0 {
		t.Fatalf("missing phases: %v", phases)
	}
	for _, want := range []string{"wait", "responsiveness", "hop", "grant", "ready", "holder"} {
		if names[want] == 0 {
			t.Errorf("no %q events in trace: %v", want, names)
		}
	}
}
