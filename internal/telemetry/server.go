package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the live observability endpoint: an HTTP listener serving
//
//	/metrics        — Prometheus text exposition (the registered source)
//	/healthz        — liveness probe ("ok")
//	/debug/pprof/*  — the standard Go profiling handlers (CPU profile,
//	                  heap, goroutines, ...)
//
// One Server runs per process (ringnode -metrics-addr, or
// core.WithMetricsAddr); scrapes read live counters under the tracer's
// lock, so they are safe while the node serves traffic.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer listens on addr (host:port; a :0 port picks a free one) and
// serves metrics from write, which is called per scrape and must encode
// the current state onto the writer. The server runs until Close.
func NewServer(addr string, write func(*PromWriter)) (*Server, error) {
	if write == nil {
		return nil, fmt.Errorf("telemetry: nil metrics source")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		pw := NewPromWriter(w)
		write(pw)
		_ = pw.Flush()
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() {
		// ErrServerClosed after Close is the normal exit; anything else
		// has nowhere to go but the next scrape noticing the dead port.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the server's actual listen address (resolves :0 ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
