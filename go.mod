module adaptivetoken

go 1.22
