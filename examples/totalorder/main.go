// Replicated ledger via totally ordered broadcast: four bank branches apply
// transfers concurrently. Because updates are sequenced by token
// possession, every replica applies them in the same order and ends with
// identical balances — the group-communication use case that motivates the
// paper.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"adaptivetoken/internal/core"
	"adaptivetoken/internal/tobcast"
)

const branches = 4

// ledger is one replica's application state: account balances updated only
// by delivered (globally ordered) transactions.
type ledger struct {
	mu       sync.Mutex
	balances map[string]int
	applied  []string
}

func newLedger() *ledger {
	return &ledger{balances: map[string]int{"alice": 100, "bob": 100, "carol": 100}}
}

// apply executes one delivered transaction: "from:to:amount".
func (l *ledger) apply(e tobcast.Entry) {
	parts := strings.Split(e.Payload, ":")
	if len(parts) != 3 {
		return
	}
	var amount int
	fmt.Sscanf(parts[2], "%d", &amount)
	l.mu.Lock()
	defer l.mu.Unlock()
	// Reject overdrafts deterministically — every replica sees the same
	// order, so every replica rejects the same transfers.
	if l.balances[parts[0]] >= amount {
		l.balances[parts[0]] -= amount
		l.balances[parts[1]] += amount
		l.applied = append(l.applied, fmt.Sprintf("#%d %s", e.Seq, e.Payload))
	}
}

func (l *ledger) snapshot() (map[string]int, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cp := make(map[string]int, len(l.balances))
	for k, v := range l.balances {
		cp[k] = v
	}
	return cp, len(l.applied)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := core.NewCluster(branches, core.WithTimeUnit(200*time.Microsecond))
	if err != nil {
		return err
	}
	defer cluster.Close()

	ledgers := make([]*ledger, branches)
	for i := 0; i < branches; i++ {
		ledgers[i] = newLedger()
		l := ledgers[i]
		cluster.Broadcaster(i).Subscribe(l.apply)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Branches submit conflicting transfers concurrently.
	transfers := [][]string{
		{"alice:bob:30", "bob:carol:80", "carol:alice:10"},
		{"bob:alice:50", "alice:carol:90"},
		{"carol:bob:40", "bob:alice:25", "alice:bob:5"},
		{"alice:carol:60", "carol:bob:15"},
	}
	total := 0
	var wg sync.WaitGroup
	for i, batch := range transfers {
		i, batch := i, batch
		total += len(batch)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, tx := range batch {
				if _, err := cluster.Broadcaster(i).Publish(ctx, tx); err != nil {
					log.Printf("branch %d publish %s: %v", i, tx, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Wait for all replicas to catch up.
	if err := cluster.WaitDelivered(ctx, total); err != nil {
		return err
	}

	ref, refApplied := ledgers[0].snapshot()
	fmt.Printf("branch 0 applied %d of %d transfers; balances: %v\n", refApplied, total, ref)
	agree := true
	for i := 1; i < branches; i++ {
		bal, applied := ledgers[i].snapshot()
		same := applied == refApplied
		for k, v := range ref {
			if bal[k] != v {
				same = false
			}
		}
		fmt.Printf("branch %d applied %d; balances: %v (agrees: %v)\n", i, applied, bal, same)
		if !same {
			agree = false
		}
	}
	if !agree {
		return fmt.Errorf("replicas diverged")
	}
	sum := 0
	for _, v := range ref {
		sum += v
	}
	fmt.Printf("replicas agree; money conserved: %d (want 300)\n", sum)
	return nil
}
