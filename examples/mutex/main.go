// Distributed mutual exclusion under contention: eight nodes hammer a
// shared counter through the token-based lock. The run verifies mutual
// exclusion (never two holders), shows per-node wait statistics, and prints
// how the adaptive protocol behaved.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"adaptivetoken/internal/core"
	"adaptivetoken/internal/protocol"
)

const (
	nodes       = 8
	incrementsN = 10
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := core.NewCluster(nodes,
		core.WithVariant(protocol.BinarySearch),
		core.WithTrapGC(protocol.GCRotation),
		core.WithTimeUnit(200*time.Microsecond),
	)
	if err != nil {
		return err
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var (
		stateMu sync.Mutex
		counter int
		holders int
		maxHold int
		waits   = make([][]time.Duration, nodes)
	)

	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < incrementsN; k++ {
				start := time.Now()
				if err := cluster.Mutex(i).Lock(ctx); err != nil {
					log.Printf("node %d: %v", i, err)
					return
				}
				wait := time.Since(start)

				stateMu.Lock()
				holders++
				if holders > maxHold {
					maxHold = holders
				}
				counter++
				waits[i] = append(waits[i], wait)
				stateMu.Unlock()

				time.Sleep(500 * time.Microsecond) // the critical section

				stateMu.Lock()
				holders--
				stateMu.Unlock()

				if err := cluster.Mutex(i).Unlock(); err != nil {
					log.Printf("node %d unlock: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	fmt.Printf("counter = %d (want %d)\n", counter, nodes*incrementsN)
	fmt.Printf("max concurrent holders = %d (mutual exclusion %s)\n",
		maxHold, map[bool]string{true: "HELD", false: "VIOLATED"}[maxHold == 1])

	fmt.Println("\nper-node lock waits:")
	for i, ws := range waits {
		if len(ws) == 0 {
			continue
		}
		sort.Slice(ws, func(a, b int) bool { return ws[a] < ws[b] })
		var sum time.Duration
		for _, w := range ws {
			sum += w
		}
		fmt.Printf("  node %d: n=%d mean=%v p50=%v max=%v\n",
			i, len(ws),
			(sum / time.Duration(len(ws))).Round(time.Millisecond),
			ws[len(ws)/2].Round(time.Millisecond),
			ws[len(ws)-1].Round(time.Millisecond))
	}
	return nil
}
