// Failure handling (the paper's §5 sketch): the node holding the token is
// partitioned away mid-run; a pending requester times out, probes the ring,
// regenerates the token under a higher epoch, and service resumes.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"adaptivetoken/internal/core"
	"adaptivetoken/internal/protocol"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 6
	cluster, err := core.NewCluster(n,
		core.WithTimeUnit(time.Millisecond),
		core.WithRecovery(300),        // suspect token loss after 300 time units
		core.WithResearchTimeout(150), // keep searching meanwhile
	)
	if err != nil {
		return err
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Warm up: pass the lock around once.
	for i := 0; i < n; i++ {
		if err := cluster.Mutex(i).Lock(ctx); err != nil {
			return fmt.Errorf("warmup node %d: %w", i, err)
		}
		if err := cluster.Mutex(i).Unlock(); err != nil {
			return err
		}
	}
	fmt.Println("warmup complete: lock circulated through all 6 nodes")

	// Node 3 takes the token... and vanishes while holding it.
	if err := cluster.Mutex(3).Lock(ctx); err != nil {
		return err
	}
	cluster.Network().Isolate(3, true)
	fmt.Println("node 3 grabbed the token and was partitioned away — token lost")

	// Node 5 wants the lock. Its request cannot be served by the lost
	// token; after the recovery timeout it probes the ring, finds no
	// holder, and regenerates the token under a higher epoch.
	start := time.Now()
	if err := cluster.Mutex(5).Lock(ctx); err != nil {
		return fmt.Errorf("node 5 never recovered: %w", err)
	}
	fmt.Printf("node 5 acquired a REGENERATED token after %v\n",
		time.Since(start).Round(time.Millisecond))
	if err := cluster.Mutex(5).Unlock(); err != nil {
		return err
	}

	// Service continues for everyone else.
	for _, i := range []int{0, 1, 2, 4} {
		if err := cluster.Mutex(i).Lock(ctx); err != nil {
			return fmt.Errorf("post-recovery node %d: %w", i, err)
		}
		if err := cluster.Mutex(i).Unlock(); err != nil {
			return err
		}
	}
	fmt.Println("post-recovery: lock circulated through the surviving nodes")

	// The partition heals; node 3's stale token is discarded on sight
	// (lower epoch), so no duplicate tokens circulate.
	cluster.Network().Isolate(3, false)
	_ = cluster.Mutex(3).Unlock() // its critical section is long over
	if err := cluster.Mutex(3).Lock(ctx); err != nil {
		return fmt.Errorf("healed node 3: %w", err)
	}
	if err := cluster.Mutex(3).Unlock(); err != nil {
		return err
	}
	fmt.Println("partition healed: node 3 rejoined and re-acquired cleanly")
	_ = protocol.BinarySearch // document which protocol runs underneath
	return nil
}
