// Distributed round-robin scheduling — the paper's third motivating
// application. Six workers race to claim 30 work units. Claims are
// published through the token-ordered broadcast, so every worker sees the
// same claim order (first claim wins) and each unit is processed exactly
// once; token rotation spreads the claiming rights round-robin.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"adaptivetoken/internal/core"
	"adaptivetoken/internal/tobcast"
)

const (
	workers = 6
	units   = 30
)

// board is one worker's replicated view of who claimed what.
type board struct {
	mu      sync.Mutex
	claimed map[int]int // unit → winning worker
}

func (b *board) apply(e tobcast.Entry) {
	var unit, worker int
	if _, err := fmt.Sscanf(e.Payload, "claim %d by %d", &unit, &worker); err != nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, taken := b.claimed[unit]; !taken {
		b.claimed[unit] = worker // first claim in the total order wins
	}
}

// nextUnclaimed returns the lowest unit this view shows unclaimed.
func (b *board) nextUnclaimed() (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for u := 0; u < units; u++ {
		if _, taken := b.claimed[u]; !taken {
			return u, true
		}
	}
	return 0, false
}

// winner reports whether worker won unit.
func (b *board) winner(unit, worker int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.claimed[unit] == worker
}

func (b *board) snapshot() map[int]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := make(map[int]int, len(b.claimed))
	for k, v := range b.claimed {
		cp[k] = v
	}
	return cp
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := core.NewCluster(workers, core.WithTimeUnit(200*time.Microsecond))
	if err != nil {
		return err
	}
	defer cluster.Close()

	boards := make([]*board, workers)
	for w := 0; w < workers; w++ {
		boards[w] = &board{claimed: make(map[int]int)}
		cluster.Broadcaster(w).Subscribe(boards[w].apply)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	processed := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				unit, ok := boards[w].nextUnclaimed()
				if !ok {
					return // board full: everything claimed
				}
				// Publish the claim; the total order arbitrates
				// racing claims for the same unit.
				if _, err := cluster.Broadcaster(w).Publish(ctx,
					fmt.Sprintf("claim %d by %d", unit, w)); err != nil {
					log.Printf("worker %d: %v", w, err)
					return
				}
				// Wait until our own claim is delivered locally.
				deadline := time.Now().Add(10 * time.Second)
				for {
					if _, taken := boards[w].snapshot()[unit]; taken {
						break
					}
					if time.Now().After(deadline) {
						log.Printf("worker %d: claim %d never delivered", w, unit)
						return
					}
					time.Sleep(time.Millisecond)
				}
				if boards[w].winner(unit, w) {
					// We own it: do the work.
					time.Sleep(2 * time.Millisecond)
					processed[w] = append(processed[w], unit)
				}
			}
		}()
	}
	wg.Wait()

	// Verify: every unit processed exactly once, across all workers.
	owner := make(map[int]int)
	dups := 0
	for w, us := range processed {
		for _, u := range us {
			if _, seen := owner[u]; seen {
				dups++
			}
			owner[u] = w
		}
	}
	fmt.Printf("%d units processed by %d workers, duplicates: %d\n", len(owner), workers, dups)
	for w, us := range processed {
		fmt.Printf("  worker %d processed %2d units: %v\n", w, len(us), us)
	}
	if len(owner) != units || dups != 0 {
		return fmt.Errorf("scheduling broken: %d units, %d duplicates", len(owner), dups)
	}
	fmt.Println("round-robin dispatch complete: no unit ran twice, none was lost")
	return nil
}
