// Quickstart: a five-node in-process ring running the adaptive
// binary-search token protocol. Each node takes the distributed lock once
// and publishes one totally ordered message; every node delivers the same
// sequence.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"adaptivetoken/internal/core"
	"adaptivetoken/internal/tobcast"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 5
	cluster, err := core.NewCluster(n, core.WithTimeUnit(time.Millisecond))
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Watch deliveries at node 0.
	cluster.Broadcaster(0).Subscribe(func(e tobcast.Entry) {
		fmt.Printf("node 0 delivered #%d from node %d: %q\n", e.Seq, e.Node, e.Payload)
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 0; i < n; i++ {
		// The distributed lock: token possession is the critical
		// section right.
		start := time.Now()
		if err := cluster.Mutex(i).Lock(ctx); err != nil {
			return fmt.Errorf("node %d lock: %w", i, err)
		}
		fmt.Printf("node %d entered its critical section after %v\n",
			i, time.Since(start).Round(time.Millisecond))
		if err := cluster.Mutex(i).Unlock(); err != nil {
			return err
		}

		// Totally ordered broadcast: sequence numbers are assigned
		// under token possession, so all nodes agree on the order.
		seq, err := cluster.Broadcaster(i).Publish(ctx, fmt.Sprintf("greetings from %d", i))
		if err != nil {
			return fmt.Errorf("node %d publish: %w", i, err)
		}
		fmt.Printf("node %d published message #%d\n", i, seq)
	}

	// Wait for every node to deliver everything, then compare logs.
	if err := cluster.WaitDelivered(ctx, n); err != nil {
		return err
	}
	ref := cluster.Broadcaster(0).Log()
	for i := 1; i < n; i++ {
		l := cluster.Broadcaster(i).Log()
		if !ref.IsPrefixOf(l) || !l.IsPrefixOf(ref) {
			return fmt.Errorf("node %d delivered a different order", i)
		}
	}
	fmt.Printf("all %d nodes delivered the same %d messages in the same order\n", n, ref.Len())
	return nil
}
