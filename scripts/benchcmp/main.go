// Command benchcmp compares two tokensim benchmark records (the
// BENCH_*.json artifacts written by `tokensim -benchjson`) benchstat-style:
// one row per metric with old, new, and relative delta, for each phase the
// records share.
//
// Usage:
//
//	go run ./scripts/benchcmp BENCH_baseline.json BENCH_opt.json
//	go run ./scripts/benchcmp -gate 10 old.json new.json
//
// With -gate P the command exits nonzero when bytes/event or mallocs/event
// regresses by more than P percent, or when events/sec drops by more than P
// percent — the allocation- and throughput-regression checks CI runs against
// the checked-in baselines (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
)

// phase mirrors cmd/tokensim's measured half of a record. Per-event fields
// may be absent in records written before they existed; they are then
// derived from the totals.
type phase struct {
	Parallelism     int     `json:"parallelism"`
	WallSeconds     float64 `json:"wall_seconds"`
	EventsPerSec    float64 `json:"events_per_sec"`
	AllocBytes      float64 `json:"alloc_bytes"`
	Mallocs         float64 `json:"mallocs"`
	BytesPerEvent   float64 `json:"bytes_per_event"`
	MallocsPerEvent float64 `json:"mallocs_per_event"`
	Stats           struct {
		SimEvents    float64 `json:"sim_events"`
		HeapPeak     float64 `json:"heap_peak"`
		BytesPerNode float64 `json:"bytes_per_node"`
	} `json:"stats"`
}

type record struct {
	Experiment string `json:"experiment"`
	Scheduler  string `json:"scheduler,omitempty"`
	Seed       uint64 `json:"seed"`
	Requests   int    `json:"requests"`
	Sequential *phase `json:"sequential"`
	Parallel   phase  `json:"parallel"`
}

func (p *phase) derive() {
	if p == nil || p.Stats.SimEvents == 0 {
		return
	}
	if p.BytesPerEvent == 0 {
		p.BytesPerEvent = p.AllocBytes / p.Stats.SimEvents
	}
	if p.MallocsPerEvent == 0 {
		p.MallocsPerEvent = p.Mallocs / p.Stats.SimEvents
	}
}

func load(path string) (record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return record{}, err
	}
	var r record
	if err := json.Unmarshal(data, &r); err != nil {
		return record{}, fmt.Errorf("%s: %w", path, err)
	}
	r.Sequential.derive()
	r.Parallel.derive()
	return r, nil
}

// metric is one comparison row; lowerBetter decides the sign of "delta" in
// the improvement column and whether the gate watches it.
type metric struct {
	name        string
	get         func(p *phase) float64
	lowerBetter bool
	gated       bool
}

var metrics = []metric{
	{"wall_seconds", func(p *phase) float64 { return p.WallSeconds }, true, false},
	{"events_per_sec", func(p *phase) float64 { return p.EventsPerSec }, false, true},
	{"alloc_bytes", func(p *phase) float64 { return p.AllocBytes }, true, false},
	{"mallocs", func(p *phase) float64 { return p.Mallocs }, true, false},
	{"bytes_per_event", func(p *phase) float64 { return p.BytesPerEvent }, true, true},
	{"mallocs_per_event", func(p *phase) float64 { return p.MallocsPerEvent }, true, true},
	// Peak-heap metrics appear only in records written with memory
	// observation on (fig9big passes); they are reported, not gated — the
	// peak is a point sample of one run, noisier than the per-event rates.
	{"heap_peak", func(p *phase) float64 { return p.Stats.HeapPeak }, true, false},
	{"bytes_per_node", func(p *phase) float64 { return p.Stats.BytesPerNode }, true, false},
}

func main() {
	gate := flag.Float64("gate", 0, "fail when a per-event allocation metric regresses more than this percent (0 = report only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-gate pct] old.json new.json")
		os.Exit(2)
	}
	oldRec, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	newRec, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	if oldRec.Experiment != newRec.Experiment || oldRec.Seed != newRec.Seed || oldRec.Requests != newRec.Requests {
		fmt.Fprintf(os.Stderr, "benchcmp: records compare different runs: %s/seed%d/%dreq vs %s/seed%d/%dreq\n",
			oldRec.Experiment, oldRec.Seed, oldRec.Requests,
			newRec.Experiment, newRec.Seed, newRec.Requests)
	}

	failed := false
	cmpPhase := func(label string, po, pn *phase) {
		if po == nil || pn == nil {
			return
		}
		fmt.Printf("%s (parallelism %d -> %d):\n", label, po.Parallelism, pn.Parallelism)
		w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(w, "metric\told\tnew\tdelta\t")
		for _, m := range metrics {
			vo, vn := m.get(po), m.get(pn)
			if vo == 0 && vn == 0 {
				continue
			}
			delta := 0.0
			if vo != 0 {
				delta = (vn - vo) / vo * 100
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%+.1f%%\t\n", m.name, human(vo), human(vn), delta)
			// A regression is delta above the gate for lower-is-better
			// metrics, or below its negation for higher-is-better ones
			// (throughput).
			if m.gated && *gate > 0 && vo > 0 {
				if (m.lowerBetter && delta > *gate) || (!m.lowerBetter && delta < -*gate) {
					failed = true
					fmt.Fprintf(os.Stderr, "benchcmp: GATE: %s %s regressed %+.1f%% (gate %.0f%%)\n",
						label, m.name, delta, *gate)
				}
			}
		}
		w.Flush()
		fmt.Println()
	}
	cmpPhase("sequential", oldRec.Sequential, newRec.Sequential)
	cmpPhase("parallel", &oldRec.Parallel, &newRec.Parallel)
	if failed {
		os.Exit(1)
	}
}

// human renders v with SI-ish precision: integers below 1k, otherwise 4
// significant digits with a suffix.
func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3fk", v/1e3)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
