#!/usr/bin/env bash
# smoke-live.sh boots a real three-node ring over TCP loopback: each
# process takes the distributed lock once and publishes one totally
# ordered message, then exits. Any node failing (lock timeout, transport
# error, nonzero exit) fails the smoke. Each node also serves the
# telemetry endpoint (-metrics-addr); the smoke curls /healthz, scrapes
# /metrics for the expected Prometheus series, and pulls a 1-second CPU
# profile from /debug/pprof/profile. A second phase boots a 2-shard
# deployment — two independent 2-node rings with -shard labels — and
# asserts each shard's token circulates and its metrics carry the right
# shard label. Run via `make smoke-live`.
set -euo pipefail

GO=${GO:-go}
tmp=$(mktemp -d)
pids=()

cleanup() {
	for p in "${pids[@]:-}"; do
		kill "$p" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/ringnode" ./cmd/ringnode

# A randomized base port keeps parallel CI jobs off each other's toes;
# ringnode fails fast if a port is taken, and re-running picks new ones.
base=$(((RANDOM % 20000) + 20000))
peers="127.0.0.1:$base,127.0.0.1:$((base + 1)),127.0.0.1:$((base + 2))"

echo "smoke-live: ring at $peers"
for id in 0 1 2; do
	"$tmp/ringnode" -id "$id" -peers "$peers" \
		-locks 1 -pubs 1 -wait 2s -timeout 30s \
		-metrics-addr "127.0.0.1:$((base + 10 + id))" \
		>"$tmp/node$id.log" 2>&1 &
	pids+=($!)
done

status=0

# curl_retry URL PATTERN: scrape URL until PATTERN appears (the workload
# needs a moment to generate traffic) or the deadline passes.
curl_retry() {
	local url=$1 pattern=$2 deadline=$((SECONDS + 15)) body=""
	while [ "$SECONDS" -lt "$deadline" ]; do
		body=$(curl -fsS --max-time 2 "$url" 2>/dev/null || true)
		if printf '%s' "$body" | grep -q "$pattern"; then
			return 0
		fi
		sleep 0.2
	done
	echo "smoke-live: $url never matched $pattern" >&2
	return 1
}

# Telemetry checks run while the nodes are still settling/working: health,
# a live CPU profile (started early, while the node is guaranteed alive),
# and the expected Prometheus series once token traffic has flowed.
for id in 0 1 2; do
	maddr="127.0.0.1:$((base + 10 + id))"
	curl_retry "http://$maddr/healthz" "^ok$" || status=1
done
curl -fsS --max-time 10 -o "$tmp/profile.pb.gz" \
	"http://127.0.0.1:$((base + 10))/debug/pprof/profile?seconds=1" &
profile_pid=$!
for id in 0 1 2; do
	maddr="127.0.0.1:$((base + 10 + id))"
	curl_retry "http://$maddr/metrics" 'adaptivetoken_messages_total{kind="token"}' || status=1
	curl_retry "http://$maddr/metrics" '^# TYPE adaptivetoken_responsiveness_time_units histogram$' || status=1
done
if ! wait "$profile_pid" || [ ! -s "$tmp/profile.pb.gz" ]; then
	echo "smoke-live: /debug/pprof/profile fetch failed" >&2
	status=1
fi

for id in 0 1 2; do
	if ! wait "${pids[$id]}"; then
		status=1
	fi
done
pids=()

for id in 0 1 2; do
	sed "s/^/node$id | /" "$tmp/node$id.log"
	if ! grep -q "^lock 0 acquired" "$tmp/node$id.log"; then
		echo "smoke-live: node $id never acquired the lock" >&2
		status=1
	fi
done

if [ "$status" -ne 0 ]; then
	echo "smoke-live: FAIL" >&2
	exit 1
fi
echo "smoke-live: single-ring phase ok"

# --- 2-shard phase: two independent 2-node rings, each its own token ---
# The shards share nothing but the machine; -shard k only tags each
# ring's telemetry. Both rings must make progress concurrently and each
# /metrics endpoint must label every series with its shard.
sbase=$((base + 100))
for shard in 0 1; do
	p0=$((sbase + shard * 2))
	speers="127.0.0.1:$p0,127.0.0.1:$((p0 + 1))"
	echo "smoke-live: shard $shard ring at $speers"
	for id in 0 1; do
		"$tmp/ringnode" -id "$id" -peers "$speers" -shard "$shard" \
			-locks 1 -pubs 1 -wait 2s -timeout 30s \
			-metrics-addr "127.0.0.1:$((sbase + 20 + shard * 2 + id))" \
			>"$tmp/shard$shard-node$id.log" 2>&1 &
		pids+=($!)
	done
done

for shard in 0 1; do
	maddr="127.0.0.1:$((sbase + 20 + shard * 2))"
	curl_retry "http://$maddr/healthz" "^ok$" || status=1
	curl_retry "http://$maddr/metrics" "adaptivetoken_messages_total{kind=\"token\",shard=\"$shard\"}" || status=1
	# No series may carry the other shard's label: the rings are disjoint.
	other=$((1 - shard))
	if curl -fsS --max-time 2 "http://$maddr/metrics" | grep -q "shard=\"$other\""; then
		echo "smoke-live: shard $shard metrics leak shard $other labels" >&2
		status=1
	fi
done

for p in "${pids[@]}"; do
	if ! wait "$p"; then
		status=1
	fi
done
pids=()

for shard in 0 1; do
	for id in 0 1; do
		sed "s/^/shard$shard-node$id | /" "$tmp/shard$shard-node$id.log"
		if ! grep -q "^lock 0 acquired" "$tmp/shard$shard-node$id.log"; then
			echo "smoke-live: shard $shard node $id never acquired the lock" >&2
			status=1
		fi
	done
done

if [ "$status" -ne 0 ]; then
	echo "smoke-live: FAIL" >&2
	exit 1
fi
echo "smoke-live: ok"
