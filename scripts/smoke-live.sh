#!/usr/bin/env bash
# smoke-live.sh boots a real 2-shard, 6-process ringnode cluster through
# the orchestrator (cmd/ringload): port allocation, ring wiring and
# readiness are the orchestrator's job — no hand-rolled sleeps or
# hardcoded port ranges. ringload writes a manifest of live endpoints as
# soon as every /healthz answers; while the synchronized open-loop load
# window runs, the smoke curls each node's /healthz, scrapes /metrics for
# the expected Prometheus series (token traffic, responsiveness
# histogram, shard labels with a cross-shard leak check), and pulls a
# 1-second CPU profile from /debug/pprof/profile. ringload itself then
# asserts the hard invariants — clean staged shutdown, no leaked timers,
# no cross-process mutual-exclusion violations, nonzero completed
# sessions — via its exit status. Run via `make smoke-live`.
set -euo pipefail

GO=${GO:-go}
tmp=$(mktemp -d)
ringload_pid=""

cleanup() {
	if [ -n "$ringload_pid" ]; then
		kill "$ringload_pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/ringnode" ./cmd/ringnode
$GO build -o "$tmp/ringload" ./cmd/ringload

"$tmp/ringload" -n 6 -shards 2 -rate 20 -duration 12s -hold 1ms -seed 1 \
	-node-bin "$tmp/ringnode" \
	-manifest "$tmp/manifest.json" -out "$tmp/bench.json" \
	>"$tmp/ringload.out" 2>"$tmp/ringload.log" &
ringload_pid=$!

# The manifest appears (atomically, via rename) once every node's
# /healthz has answered — that is the readiness barrier.
deadline=$((SECONDS + 60))
while [ ! -s "$tmp/manifest.json" ]; do
	if ! kill -0 "$ringload_pid" 2>/dev/null; then
		echo "smoke-live: ringload exited before the cluster became ready" >&2
		sed 's/^/ringload | /' "$tmp/ringload.log" >&2 || true
		exit 1
	fi
	if [ "$SECONDS" -ge "$deadline" ]; then
		echo "smoke-live: cluster never became ready" >&2
		exit 1
	fi
	sleep 0.2
done

# Pull each node's metrics address and shard out of the manifest. The
# format is stable JSON (one key per line); no jq dependency needed.
mapfile -t maddrs < <(grep -o '"metrics": "[^"]*"' "$tmp/manifest.json" | cut -d'"' -f4)
mapfile -t nshards < <(grep -o '"shard": [0-9]*' "$tmp/manifest.json" | awk '{print $2}')
if [ "${#maddrs[@]}" -ne 6 ] || [ "${#nshards[@]}" -ne 6 ]; then
	echo "smoke-live: manifest lists ${#maddrs[@]} nodes / ${#nshards[@]} shards, want 6" >&2
	cat "$tmp/manifest.json" >&2
	exit 1
fi
echo "smoke-live: cluster ready — ${maddrs[*]}"

status=0

# curl_retry URL PATTERN: scrape URL until PATTERN appears (the load
# window needs a moment to generate traffic) or the deadline passes.
curl_retry() {
	local url=$1 pattern=$2 deadline=$((SECONDS + 15)) body=""
	while [ "$SECONDS" -lt "$deadline" ]; do
		body=$(curl -fsS --max-time 2 "$url" 2>/dev/null || true)
		if printf '%s' "$body" | grep -q "$pattern"; then
			return 0
		fi
		sleep 0.2
	done
	echo "smoke-live: $url never matched $pattern" >&2
	return 1
}

# Probe the live cluster while load is flowing: health, a live CPU
# profile (started early, while every node is guaranteed alive), then
# the Prometheus series each node must expose — token traffic and the
# responsiveness histogram, always carrying the node's own shard label
# and never the other shard's (the rings are disjoint).
for m in "${maddrs[@]}"; do
	curl_retry "http://$m/healthz" "^ok$" || status=1
done
curl -fsS --max-time 10 -o "$tmp/profile.pb.gz" \
	"http://${maddrs[0]}/debug/pprof/profile?seconds=1" &
profile_pid=$!
for i in "${!maddrs[@]}"; do
	m=${maddrs[$i]} shard=${nshards[$i]}
	curl_retry "http://$m/metrics" "adaptivetoken_messages_total{kind=\"token\",shard=\"$shard\"}" || status=1
	curl_retry "http://$m/metrics" '^# TYPE adaptivetoken_responsiveness_time_units histogram$' || status=1
	other=$((1 - shard))
	if curl -fsS --max-time 2 "http://$m/metrics" | grep -q "shard=\"$other\""; then
		echo "smoke-live: node $i (shard $shard) metrics leak shard $other labels" >&2
		status=1
	fi
done
if ! wait "$profile_pid" || [ ! -s "$tmp/profile.pb.gz" ]; then
	echo "smoke-live: /debug/pprof/profile fetch failed" >&2
	status=1
fi

# The orchestrator's own verdict: nonzero on any node exiting dirty
# (leaked timers, guard violations), census violations, or zero
# completed sessions.
if ! wait "$ringload_pid"; then
	status=1
fi
ringload_pid=""
sed 's/^/ringload | /' "$tmp/ringload.out"

# The aggregated record must show real work: grants scraped off the
# fleet ("grants" appears exactly once — the cluster-wide sum).
grants=$(grep -o '"grants": [0-9]*' "$tmp/bench.json" | head -1 | awk '{print $2}')
if [ -z "$grants" ] || [ "$grants" -eq 0 ]; then
	echo "smoke-live: aggregated record shows no grants" >&2
	status=1
fi

if [ "$status" -ne 0 ]; then
	sed 's/^/ringload | /' "$tmp/ringload.log" >&2 || true
	echo "smoke-live: FAIL" >&2
	exit 1
fi
echo "smoke-live: ok ($grants grants across the fleet)"
