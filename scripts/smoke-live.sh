#!/usr/bin/env bash
# smoke-live.sh boots a real three-node ring over TCP loopback: each
# process takes the distributed lock once and publishes one totally
# ordered message, then exits. Any node failing (lock timeout, transport
# error, nonzero exit) fails the smoke. Run via `make smoke-live`.
set -euo pipefail

GO=${GO:-go}
tmp=$(mktemp -d)
pids=()

cleanup() {
	for p in "${pids[@]:-}"; do
		kill "$p" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/ringnode" ./cmd/ringnode

# A randomized base port keeps parallel CI jobs off each other's toes;
# ringnode fails fast if a port is taken, and re-running picks new ones.
base=$(((RANDOM % 20000) + 20000))
peers="127.0.0.1:$base,127.0.0.1:$((base + 1)),127.0.0.1:$((base + 2))"

echo "smoke-live: ring at $peers"
for id in 0 1 2; do
	"$tmp/ringnode" -id "$id" -peers "$peers" \
		-locks 1 -pubs 1 -wait 1s -timeout 30s \
		>"$tmp/node$id.log" 2>&1 &
	pids+=($!)
done

status=0
for id in 0 1 2; do
	if ! wait "${pids[$id]}"; then
		status=1
	fi
done
pids=()

for id in 0 1 2; do
	sed "s/^/node$id | /" "$tmp/node$id.log"
	if ! grep -q "^lock 0 acquired" "$tmp/node$id.log"; then
		echo "smoke-live: node $id never acquired the lock" >&2
		status=1
	fi
done

if [ "$status" -ne 0 ]; then
	echo "smoke-live: FAIL" >&2
	exit 1
fi
echo "smoke-live: ok"
