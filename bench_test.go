// Package adaptivetoken_test holds the repository-level benchmarks: one per
// reproduced figure/table of the paper (regenerating the series each
// iteration and reporting the headline numbers as custom metrics) and
// micro-benchmarks of the protocol's hot paths.
//
// Run with:
//
//	go test -bench=. -benchmem
package adaptivetoken_test

import (
	"testing"

	"adaptivetoken/internal/bench"
	"adaptivetoken/internal/driver"
	"adaptivetoken/internal/protocol"
	"adaptivetoken/internal/spec"
	"adaptivetoken/internal/trs"
	"adaptivetoken/internal/workload"
)

// benchOpts sizes experiment runs for benchmarking: small enough to iterate,
// large enough for stable means.
func benchOpts() bench.Options {
	return bench.Options{Seed: 1, Requests: 300, MaxTime: 3_000_000}
}

// reportLast extracts headline series values at the table's last point.
func reportLast(b *testing.B, tbl bench.Table, series ...string) {
	b.Helper()
	if len(tbl.Points) == 0 {
		b.Fatal("empty table")
	}
	last := tbl.Points[len(tbl.Points)-1]
	for _, s := range series {
		b.ReportMetric(last.Y[s], s)
	}
}

// BenchmarkFigure9 regenerates Figure 9 (responsiveness vs n at fixed load)
// and reports the n=1000 endpoints.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Figure9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, tbl, "ring", "binsearch")
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10 (responsiveness vs load at n=100)
// and reports the light-load endpoints.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Figure10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, tbl, "ring", "binsearch")
		}
	}
}

// BenchmarkAblationDirected regenerates the delegated-vs-directed table.
func BenchmarkAblationDirected(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.AblationDirected(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, tbl, "delegated-cheap/req", "directed-cheap/req")
		}
	}
}

// BenchmarkAblationTrapGC regenerates the trap-GC comparison.
func BenchmarkAblationTrapGC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.AblationTrapGC(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, tbl, "bounces/grant", "wait-mean")
		}
	}
}

// BenchmarkAblationSpeed regenerates the token-speed sweep.
func BenchmarkAblationSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.AblationSpeed(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, tbl, "token-msgs/req", "wait-mean")
		}
	}
}

// BenchmarkAblationPush regenerates the pull-vs-push comparison.
func BenchmarkAblationPush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.AblationPush(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, tbl, "pull-wait", "push-wait")
		}
	}
}

// BenchmarkAblationThrottle regenerates the gimme/token ratio table.
func BenchmarkAblationThrottle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.AblationThrottle(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, tbl, "ratio")
		}
	}
}

// BenchmarkFairness regenerates the Theorem 3 fairness table.
func BenchmarkFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.FairnessExperiment(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, tbl, "max-by-one-mean", "log2(n)")
		}
	}
}

// BenchmarkSaturation regenerates the all-ready saturation table.
func BenchmarkSaturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Saturation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportLast(b, tbl, "ring", "binsearch")
		}
	}
}

// BenchmarkSimulatedGrant measures end-to-end simulated cost per grant in
// the BinarySearch protocol at n=128 under moderate load.
func BenchmarkSimulatedGrant(b *testing.B) {
	cfg := protocol.Config{Variant: protocol.BinarySearch, N: 128, TrapGC: protocol.GCRotation}
	b.ReportAllocs()
	b.ResetTimer()
	served := 0
	for served < b.N {
		b.StopTimer()
		r, err := driver.New(cfg, driver.Options{Seed: uint64(served + 1)})
		if err != nil {
			b.Fatal(err)
		}
		batch := 500
		if rem := b.N - served; rem < batch {
			batch = rem
		}
		b.StartTimer()
		if _, err := r.RunWorkload(workload.Poisson{N: 128, MeanGap: 10}, batch, 10_000_000); err != nil {
			b.Fatal(err)
		}
		served += batch
	}
}

// BenchmarkProtocolHop measures the pure state-machine cost of one token
// hop (pass + receive), no simulator involved.
func BenchmarkProtocolHop(b *testing.B) {
	cfg := protocol.Config{Variant: protocol.BinarySearch, N: 2}
	n0, err := protocol.New(0, cfg)
	if err != nil {
		b.Fatal(err)
	}
	n1, err := protocol.New(1, cfg)
	if err != nil {
		b.Fatal(err)
	}
	eff := n0.GiveToken(0)
	nodes := []*protocol.Node{n0, n1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(eff.Msgs) != 1 {
			b.Fatalf("unexpected effects: %+v", eff)
		}
		m := eff.Msgs[0]
		eff = nodes[m.To].HandleMessage(protocol.Time(i), m)
	}
}

// BenchmarkTRSBagMatch measures AC bag matching in the TRS engine — the
// inner loop of the formal-layer model checking.
func BenchmarkTRSBagMatch(b *testing.B) {
	elems := make([]trs.Term, 12)
	for i := range elems {
		elems[i] = trs.Pair(trs.Int(int64(i)), trs.EmptySeq())
	}
	bag := trs.NewBag(elems...)
	pat := trs.BagOf("Q", trs.Tup(trs.V("x"), trs.V("d")))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(trs.MatchAll(pat, bag)); got != 12 {
			b.Fatalf("matches = %d", got)
		}
	}
}

// BenchmarkSpecExplore measures exhaustive exploration of the full
// BinarySearch TRS at the N=2 verification instance.
func BenchmarkSpecExplore(b *testing.B) {
	p := spec.Params{N: 2, MaxBroadcasts: 1, MaxPending: 1, MaxPasses: 2}
	sys := spec.NewSystemBinarySearch(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := trs.Explore(sys.Rules, sys.Init, trs.ExploreOptions{MaxStates: 100_000})
		if res.Err != nil || res.States < 100 {
			b.Fatalf("explore: states=%d err=%v", res.States, res.Err)
		}
	}
}
