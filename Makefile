GO ?= go

.PHONY: build test race bench bench-mem bench-baseline bench-opt bench-wheel bench-shard bench-par bench-live vet check clean torture torture-shards fuzz smoke-live trace-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Everything concurrent goes under the race detector: the experiment
# fan-out, the wall-clock host (node runtimes + live clusters), the live
# torture scenarios, and the live-load stack (hardened transport, the
# open-loop generator, the multi-process orchestrator, the scrape
# parser). Equivalence tests prove the fan-out stays deterministic; this
# proves it stays data-race free.
race:
	$(GO) test -race ./internal/bench/... ./internal/node/... \
		./internal/core/... ./internal/torture/... ./internal/shard/... \
		./internal/transport/... ./internal/loadgen/... \
		./internal/orchestra/... ./internal/telemetry/... \
		./cmd/tokensim/... ./cmd/ringnode/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run XXX -bench . -benchmem ./internal/history/ ./internal/bench/
	$(GO) test -run XXX -bench . -benchmem .

# Memory-focused benchmarks plus the allocation- and throughput-regression
# gates: the engine micro-benchmarks (0 B/op budget on the typed event
# paths, wheel-vs-heap unit-delay comparison), the fig9 slice (B/op ÷
# events/op = bytes/event), the checked-in per-event budget of
# internal/bench/alloc_budget.json, and the sequential events/sec floor of
# internal/bench/perf_budget.json. See DESIGN.md §8/§10 and EXPERIMENTS.md
# ("Allocation metrics", "Throughput gate").
bench-mem:
	$(GO) test -run XXX -bench 'BenchmarkEngine' -benchmem ./internal/sim/
	$(GO) test -run XXX -bench 'BenchmarkFig9Slice' -benchmem ./internal/bench/
	$(GO) test -run 'TestAllocationBudget|TestThroughputBudget|TestEngineSteadyStateAllocFree|TestCompactToAllocFree' \
		-v ./internal/bench/ ./internal/sim/ ./internal/history/

# Regenerate BENCH_baseline.json: paper-scale Figure 9, sequential oracle
# vs the worker pool, with a byte-identity check between the two tables.
# See EXPERIMENTS.md ("Parallel runner") for what the fields mean.
bench-baseline: build
	$(GO) run ./cmd/tokensim -exp fig9 -paper -parallel 4 -baseline \
		-benchjson BENCH_baseline.json

# Regenerate BENCH_opt.json (same run as bench-baseline) and compare it
# against the checked-in pre-optimization record.
bench-opt: build
	$(GO) run ./cmd/tokensim -exp fig9 -paper -parallel 4 -baseline \
		-benchjson BENCH_opt.json
	$(GO) run ./scripts/benchcmp BENCH_baseline.json BENCH_opt.json

# Regenerate BENCH_wheel.json: the same paper-scale Figure 9 run as
# bench-baseline/bench-opt under the timing-wheel scheduler, plus the
# fig9big N=10^5 scaling sweep (-big). Compared against both checked-in
# records; the gated comparison against BENCH_opt.json fails on a >10%
# per-event allocation or events/sec regression.
bench-wheel: build
	$(GO) run ./cmd/tokensim -exp fig9 -paper -parallel 4 -baseline -big \
		-benchjson BENCH_wheel.json
	$(GO) run ./scripts/benchcmp BENCH_baseline.json BENCH_wheel.json
	$(GO) run ./scripts/benchcmp -gate 10 BENCH_opt.json BENCH_wheel.json

# Randomized fault-injection torture sweep: 9 seeds × 9 fault mixes ×
# 3 variants = 243 simulated scenarios (including the five churn families:
# join-storm, leave-storm, crash-regen, churn-mix, churn-lossy) plus the
# live sweep — 5 mixes × 1 variant × 9 seeds on real concurrent runtimes —
# each asserting single-token safety, liveness and (for the modeled
# configs) spec-trace conformance; churn scenarios machine-check per-epoch
# safety on every step and conformance via stutter windows + stable-epoch
# re-pins. Failures are shrunk to minimal counterexamples and written under
# artifacts/ for -replay. See EXPERIMENTS.md ("Torture harness",
# "Torturing churn").
torture: build
	$(GO) run ./cmd/tokensim -torture -artifact-dir artifacts

# Sharded torture families on the keyspace-sharded cluster: three
# independent BinarySearch rings behind the router, faults confined to
# chosen shards, the single-token census machine-checked per shard.
# Failures carry per-shard fault schedules and shrink shard by shard.
# See EXPERIMENTS.md ("Sharded fig9") and DESIGN.md §12.
torture-shards: build
	$(GO) run ./cmd/tokensim -torture \
		-torture-mix shard-clean,shard-lossy,shard-crash \
		-torture-variants binsearch -artifact-dir artifacts

# Regenerate BENCH_shard.json: the fixed-total-load sharded scaling pass
# (128 nodes, aggregate mean gap 10) at 1/2/4/8 shards, plus the 1-shard
# byte-parity gate against the unsharded driver (tables_identical).
bench-shard: build
	$(GO) run ./cmd/tokensim -shards 8 -requests 20000 -benchjson BENCH_shard.json

# Regenerate BENCH_par.json: every shard count of the fig9shard sweep run
# twice — once on the inline sequential path (Parallel=1, the oracle) and
# once across the full worker pool — with a DeepEqual tables-identical gate
# between the passes, then the fig9big scaling sweep pushed to N=10^6 with
# peak-heap recording (heap_peak / bytes_per_node). On a 1-CPU host the
# speedups sit at ~1.0×; GOMAXPROCS is recorded in the artifact so that is
# legible, and the perf gate keeps budgeting only the sequential floor.
bench-par: build
	$(GO) run ./cmd/tokensim -shards 8 -requests 20000 -baseline -big \
		-nodes 1000000 -benchjson BENCH_par.json

# Live TCP smoke: boot a 2-shard 6-process ringnode cluster through the
# orchestrator (cmd/ringload) under a short open-loop load window, probing
# /healthz, the shard-labeled /metrics series and a live CPU profile while
# traffic flows. Exercises the hardened transport end to end — the same
# host layer the simulator drives, but on wall clocks and sockets.
smoke-live: build
	./scripts/smoke-live.sh

# Regenerate BENCH_live.json: the live counterpart of the fig9
# responsiveness experiments — a real 50-process, 2-ring cluster under
# 20 s of synchronized open-loop Poisson load, every /metrics endpoint
# scraped and the fleet's histograms merged into one p50/p95/p99 table.
# Exit status is nonzero on guard violations, leaked timers or zero
# completed sessions. See EXPERIMENTS.md ("Live fig9 on a local cluster").
bench-live: build
	$(GO) run ./cmd/ringload -n 50 -shards 2 -rate 4 -duration 20s \
		-hold 1ms -out BENCH_live.json

# Trace one fig9-style run and write trace.json: Chrome trace_event JSON
# with request→grant spans, token hops and ready/in-flight counters. Open
# it in https://ui.perfetto.dev (or chrome://tracing). See EXPERIMENTS.md
# ("Tracing a run").
trace-demo: build
	$(GO) run ./cmd/tokensim -trace trace.json -requests 500 -seed 1

# Short native-fuzzing smoke over the protocol state machines, the CSV
# round-trip and the Prometheus text encoder; CI runs the same targets.
fuzz:
	$(GO) test -run XXX -fuzz FuzzDirectedSearch -fuzztime 10s ./internal/protocol/
	$(GO) test -run XXX -fuzz FuzzPushProbe -fuzztime 10s ./internal/protocol/
	$(GO) test -run XXX -fuzz FuzzChurnSchedule -fuzztime 10s ./internal/driver/
	$(GO) test -run XXX -fuzz FuzzParseCSV -fuzztime 10s ./internal/bench/
	$(GO) test -run XXX -fuzz FuzzEventHeap -fuzztime 10s ./internal/sim/
	$(GO) test -run XXX -fuzz FuzzTimingWheel -fuzztime 10s ./internal/sim/
	$(GO) test -run XXX -fuzz FuzzPromEncoder -fuzztime 10s ./internal/telemetry/
	$(GO) test -run XXX -fuzz FuzzShardRouter -fuzztime 10s ./internal/shard/
	$(GO) test -run XXX -fuzz FuzzFrameCodec -fuzztime 10s ./internal/transport/

check: build vet test race

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof
