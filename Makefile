GO ?= go

.PHONY: build test race bench bench-baseline vet check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment harness is concurrent since the parallel runner landed;
# the race target is the cheap way to prove the fan-out stays data-race
# free (the equivalence tests prove it stays deterministic).
race:
	$(GO) test -race ./internal/bench/... ./cmd/tokensim/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run XXX -bench . -benchmem ./internal/history/ ./internal/bench/
	$(GO) test -run XXX -bench . -benchmem .

# Regenerate BENCH_baseline.json: paper-scale Figure 9, sequential oracle
# vs the worker pool, with a byte-identity check between the two tables.
# See EXPERIMENTS.md ("Parallel runner") for what the fields mean.
bench-baseline: build
	$(GO) run ./cmd/tokensim -exp fig9 -paper -parallel 4 -baseline \
		-benchjson BENCH_baseline.json

check: build vet test race

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof
