GO ?= go

.PHONY: build test race bench bench-baseline vet check clean torture fuzz smoke-live

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Everything concurrent goes under the race detector: the experiment
# fan-out, the wall-clock host (node runtimes + live clusters), and the
# live torture scenarios. Equivalence tests prove the fan-out stays
# deterministic; this proves it stays data-race free.
race:
	$(GO) test -race ./internal/bench/... ./internal/node/... \
		./internal/core/... ./internal/torture/... \
		./cmd/tokensim/... ./cmd/ringnode/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run XXX -bench . -benchmem ./internal/history/ ./internal/bench/
	$(GO) test -run XXX -bench . -benchmem .

# Regenerate BENCH_baseline.json: paper-scale Figure 9, sequential oracle
# vs the worker pool, with a byte-identity check between the two tables.
# See EXPERIMENTS.md ("Parallel runner") for what the fields mean.
bench-baseline: build
	$(GO) run ./cmd/tokensim -exp fig9 -paper -parallel 4 -baseline \
		-benchjson BENCH_baseline.json

# Randomized fault-injection torture sweep: 9 seeds × 4 fault mixes ×
# 3 variants = 108 scenarios, each asserting single-token safety, liveness
# and (for the modeled configs) spec-trace conformance. Failures are shrunk
# to minimal counterexamples and written under artifacts/ for -replay.
# See EXPERIMENTS.md ("Torture harness").
torture: build
	$(GO) run ./cmd/tokensim -torture -artifact-dir artifacts

# Live TCP smoke: boot three ringnode processes on loopback, each taking
# the distributed lock once and publishing one totally ordered message,
# then exit cleanly. Exercises the real transport end to end — the same
# host layer the simulator drives, but on wall clocks and sockets.
smoke-live: build
	./scripts/smoke-live.sh

# Short native-fuzzing smoke over the protocol state machines and the CSV
# round-trip; CI runs the same targets.
fuzz:
	$(GO) test -run XXX -fuzz FuzzDirectedSearch -fuzztime 10s ./internal/protocol/
	$(GO) test -run XXX -fuzz FuzzPushProbe -fuzztime 10s ./internal/protocol/
	$(GO) test -run XXX -fuzz FuzzParseCSV -fuzztime 10s ./internal/bench/

check: build vet test race

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof
