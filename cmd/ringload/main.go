// Command ringload runs a live load experiment against a real
// multi-process ringnode cluster: it launches -n node processes (one or
// more rings), waits for readiness, drives synchronized open-loop client
// load through every node, scrapes all /metrics endpoints, and reports the
// cluster-wide latency distribution in the same p50/p95/p99 table shape
// tokensim's responsiveness experiments emit — plus a machine-readable
// BENCH_live.json record.
//
//	ringload -n 50 -duration 30s -rate 10 -out BENCH_live.json
//	ringload -n 12 -shards 2 -pattern bursty -crash 7 -crash-after 5s -recovery 4000
//
// The ringnode binary is built automatically (go build) unless -node-bin
// points at one. Exit status is nonzero when any node leaks timers, any
// cross-process mutual-exclusion violation is observed, or no sessions
// complete.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"

	"adaptivetoken/internal/bench"
	"adaptivetoken/internal/metrics"
	"adaptivetoken/internal/orchestra"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ringload:", err)
		os.Exit(1)
	}
}

// record is the BENCH_live.json schema: configuration, aggregate result,
// and the percentile summaries of the merged cluster histograms.
type record struct {
	Kind      string    `json:"kind"` // "live-load"
	Timestamp time.Time `json:"timestamp"`
	GoVersion string    `json:"go_version"`

	Nodes    int     `json:"nodes"`
	Shards   int     `json:"shards"`
	Rate     float64 `json:"rate_per_node"`
	Pattern  string  `json:"pattern"`
	Duration string  `json:"duration"`
	Hold     string  `json:"hold"`
	Seed     uint64  `json:"seed"`
	Crash    int     `json:"crash_node"`

	Result *orchestra.Result `json:"result"`

	LatencyMS  quantiles `json:"latency_ms"`
	AcquireMS  quantiles `json:"acquire_ms"`
	RespUnits  quantiles `json:"responsiveness_time_units"`
	WallSecond float64   `json:"wall_seconds"`
}

type quantiles struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

func summarize(h *metrics.Histogram) quantiles {
	return quantiles{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("ringload", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 50, "total node processes")
		shards   = fs.Int("shards", 1, "independent rings to split the nodes across")
		rate     = fs.Float64("rate", 10, "client arrivals per second per node")
		pattern  = fs.String("pattern", "poisson", "arrival process: poisson or bursty")
		duration = fs.Duration("duration", 15*time.Second, "load window")
		hold     = fs.Duration("hold", 2*time.Millisecond, "critical-section hold per session")
		seed     = fs.Uint64("seed", 1, "arrival schedule seed")
		crash    = fs.Int("crash", -1, "node to SIGKILL mid-run (-1 = none)")
		crashAt  = fs.Duration("crash-after", 5*time.Second, "when to crash, into the load window")
		recovery = fs.Int("recovery", 0, "token-loss recovery timeout in protocol time units (0 = node default)")
		stage    = fs.Int("stage", 8, "staged-shutdown wave width")
		policy   = fs.String("transport-policy", "", "transport backpressure policy: drop or block")
		queue    = fs.Int("transport-queue", 0, "bounded per-peer outbound queue length")
		nodeBin  = fs.String("node-bin", "", "ringnode binary (empty = go build it)")
		outJSON  = fs.String("out", "", "write the BENCH_live.json record here")
		manifest = fs.String("manifest", "", "write a live-cluster endpoint manifest (JSON) here once all nodes are healthy")
		quiet    = fs.Bool("q", false, "suppress progress logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	bin := *nodeBin
	if bin == "" {
		dir, err := os.MkdirTemp("", "ringload-bin-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		bin = filepath.Join(dir, "ringnode")
		build := exec.Command("go", "build", "-o", bin, "adaptivetoken/cmd/ringnode")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building ringnode: %w", err)
		}
	}

	cfg := orchestra.Config{
		Bin:             bin,
		Nodes:           *n,
		Shards:          *shards,
		Rate:            *rate,
		Pattern:         *pattern,
		Duration:        *duration,
		Hold:            *hold,
		Seed:            *seed,
		Crash:           *crash >= 0,
		CrashNode:       *crash,
		CrashAfter:      *crashAt,
		Recovery:        *recovery,
		StageSize:       *stage,
		TransportPolicy: *policy,
		TransportQueue:  *queue,
		Manifest:        *manifest,
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	// A crash without recovery enabled would stall the ring forever.
	if *crash >= 0 && *recovery == 0 {
		cfg.Recovery = 4000
	}

	res, runErr := orchestra.Run(context.Background(), cfg)
	if res != nil {
		printResult(out, cfg, res)
		if *outJSON != "" {
			rec := record{
				Kind:       "live-load",
				Timestamp:  time.Now().UTC(),
				GoVersion:  runtime.Version(),
				Nodes:      *n,
				Shards:     *shards,
				Rate:       *rate,
				Pattern:    *pattern,
				Duration:   duration.String(),
				Hold:       hold.String(),
				Seed:       *seed,
				Crash:      *crash,
				Result:     res,
				LatencyMS:  summarize(&res.Latency),
				AcquireMS:  summarize(&res.Acquire),
				RespUnits:  summarize(&res.Resp),
				WallSecond: res.Wall.Seconds(),
			}
			buf, err := json.MarshalIndent(rec, "", " ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*outJSON, append(buf, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *outJSON)
		}
	}
	return runErr
}

// printResult renders the run as the same table shape the simulator's
// responsiveness-tails experiment emits: one x position (the node count),
// percentile series per distribution.
func printResult(out *os.File, cfg orchestra.Config, res *orchestra.Result) {
	t := bench.Table{
		Name:   "live-load",
		XLabel: "nodes",
		Series: []string{
			"latency-p50", "latency-p95", "latency-p99",
			"acquire-p50", "acquire-p95", "acquire-p99",
			"resp-p50", "resp-p95", "resp-p99",
		},
		Points: []bench.Point{{
			X: float64(cfg.Nodes),
			Y: map[string]float64{
				"latency-p50": float64(res.Latency.Quantile(0.5)),
				"latency-p95": float64(res.Latency.Quantile(0.95)),
				"latency-p99": float64(res.Latency.Quantile(0.99)),
				"acquire-p50": float64(res.Acquire.Quantile(0.5)),
				"acquire-p95": float64(res.Acquire.Quantile(0.95)),
				"acquire-p99": float64(res.Acquire.Quantile(0.99)),
				"resp-p50":    float64(res.Resp.Quantile(0.5)),
				"resp-p95":    float64(res.Resp.Quantile(0.95)),
				"resp-p99":    float64(res.Resp.Quantile(0.99)),
			},
		}},
	}
	fmt.Fprintln(out, t.Format())
	fmt.Fprintf(out,
		"sessions: issued=%d completed=%d errors=%d violations=%d grants=%d wall=%v\n",
		res.Issued, res.Completed, res.Errors, res.Violations, res.Grants,
		res.Wall.Round(time.Millisecond))
	fmt.Fprintf(out,
		"transport: frames=%d flushes=%d batched=%d dropped_bp=%d dropped_werr=%d reconnects=%d\n",
		res.Transport.Frames, res.Transport.Flushes, res.Transport.BatchedWrites,
		res.Transport.DroppedBackpressure, res.Transport.DroppedWriteError,
		res.Transport.Reconnects)
}
