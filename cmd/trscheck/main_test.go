package main

import (
	"strings"
	"testing"
)

func small() []string {
	return []string{"-n", "2", "-b", "1", "-p", "2"}
}

func TestRunExplore(t *testing.T) {
	var sb strings.Builder
	if err := run(small(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"BinarySearch", "Search", "MessagePassingRing", "all checks passed"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("unexpected violation:\n%s", out)
	}
}

func TestRunRefine(t *testing.T) {
	var sb strings.Builder
	if err := run(append(small(), "-refine"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "BinarySearch⊑S1") {
		t.Errorf("missing refinement line:\n%s", sb.String())
	}
}

func TestRunRules(t *testing.T) {
	var sb strings.Builder
	if err := run(append(small(), "-rules"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "System BinarySearch") {
		t.Errorf("missing rules:\n%s", sb.String())
	}
}

func TestRunTrace(t *testing.T) {
	var sb strings.Builder
	if err := run(append(small(), "-trace", "binarysearch", "-steps", "6"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "[rule") {
		t.Errorf("missing reduction steps:\n%s", sb.String())
	}
}

func TestRunTraceUnknownSystem(t *testing.T) {
	var sb strings.Builder
	if err := run(append(small(), "-trace", "nonesuch"), &sb); err == nil {
		t.Fatal("unknown system must fail")
	}
}

func TestRunBadParams(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "0"}, &sb); err == nil {
		t.Fatal("invalid params must fail")
	}
	if err := run([]string{"-what"}, &sb); err == nil {
		t.Fatal("bad flag must fail")
	}
}
