// Command trscheck verifies the paper's formal layer: it encodes Systems
// S, S1, Token, Message-Passing, Search and BinarySearch as term rewriting
// systems, explores their bounded state spaces exhaustively, checks the
// prefix-property / token-uniqueness invariants at every reachable state,
// and verifies the refinement chain (each system forward-simulates S1,
// which simulates S).
//
// Usage:
//
//	trscheck                 # explore all systems at the default instance
//	trscheck -n 3 -b 2 -p 3  # custom bounds
//	trscheck -refine         # also check the refinement chain (N=2 advised)
//	trscheck -rules          # print the rule sets, paper style
//	trscheck -trace binsearch -steps 12  # show a random reduction
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"adaptivetoken/internal/spec"
	"adaptivetoken/internal/trs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trscheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trscheck", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 3, "number of processors")
		bcasts    = fs.Int("b", 2, "max broadcasts generated")
		passes    = fs.Int("p", 3, "max recorded token rotations")
		maxStates = fs.Int("max-states", 2_000_000, "state budget per system")
		refine    = fs.Bool("refine", false, "check the refinement chain too")
		rules     = fs.Bool("rules", false, "print every system's rules and exit")
		trace     = fs.String("trace", "", "show a seeded random reduction of the named system")
		steps     = fs.Int("steps", 15, "reduction length for -trace")
		seed      = fs.Uint64("seed", 1, "seed for -trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	params := spec.Params{N: *n, MaxBroadcasts: *bcasts, MaxPending: 1, MaxPasses: *passes}
	if err := params.Validate(); err != nil {
		return err
	}

	if *rules {
		for _, sc := range spec.AllSystems(params) {
			fmt.Fprintln(out, trs.FormatRules(sc.System))
		}
		return nil
	}

	if *trace != "" {
		return showTrace(out, params, *trace, *steps, *seed)
	}

	fmt.Fprintf(out, "exploring all systems at N=%d, ≤%d broadcasts, ≤%d rotations\n\n",
		params.N, params.MaxBroadcasts, params.MaxPasses)
	results, err := spec.ExploreAll(params, *maxStates)
	for _, sc := range spec.AllSystems(params) {
		r, ok := results[sc.System.Name]
		if !ok {
			continue
		}
		status := "OK"
		if len(r.Violations) > 0 {
			status = "VIOLATION: " + r.Violations[0].String()
		}
		fmt.Fprintf(out, "%-22s states=%-8d transitions=%-9d depth=%-4d terminal=%-5d %s\n",
			sc.System.Name, r.States, r.Transitions, r.Depth, r.Terminal, status)
	}
	if err != nil {
		return err
	}
	if params.N <= 2 {
		// The fully nondeterministic Figure 6 system is tractable only
		// at tiny instances.
		free := spec.SearchFreeCheck(params)
		fres := trs.Explore(free.System.Rules, free.System.Init, trs.ExploreOptions{
			MaxStates:  *maxStates,
			Invariants: free.Invariants,
		})
		status := "OK"
		if fres.Err != nil {
			status = "ERROR: " + fres.Err.Error()
		} else if len(fres.Violations) > 0 {
			status = "VIOLATION: " + fres.Violations[0].String()
		}
		fmt.Fprintf(out, "%-22s states=%-8d transitions=%-9d depth=%-4d terminal=%-5d %s\n",
			free.System.Name, fres.States, fres.Transitions, fres.Depth, fres.Terminal, status)
	}

	if *refine {
		fmt.Fprintln(out, "\nchecking refinement chain (forward simulation):")
		for _, link := range spec.Chain(params) {
			err := trs.CheckRefinement(
				link.Concrete.Rules, link.Abstract.Rules, link.Abs, link.Concrete.Init,
				trs.RefinementOptions{MaxStates: *maxStates, MaxAbstractSteps: link.MaxAbstractSteps})
			if err != nil {
				return fmt.Errorf("%s: %w", link.Name, err)
			}
			fmt.Fprintf(out, "  %-18s OK (≤%d abstract steps per concrete step)\n",
				link.Name, link.MaxAbstractSteps)
		}
	}
	fmt.Fprintln(out, "\nall checks passed")
	return nil
}

// showTrace prints a seeded random reduction of one system.
func showTrace(out io.Writer, params spec.Params, name string, steps int, seed uint64) error {
	var sys trs.System
	found := false
	for _, sc := range spec.AllSystems(params) {
		if strings.EqualFold(sc.System.Name, name) ||
			strings.EqualFold(sc.System.Name, "System"+name) {
			sys = sc.System
			found = true
			break
		}
	}
	if !found {
		var names []string
		for _, sc := range spec.AllSystems(params) {
			names = append(names, sc.System.Name)
		}
		return fmt.Errorf("unknown system %q (have: %s)", name, strings.Join(names, ", "))
	}
	fmt.Fprintf(out, "reduction of System %s (seed %d):\n0: %s\n", sys.Name, seed, sys.Init)
	trace, _, err := trs.Reduce(sys.Rules, sys.Init, trs.NewRandomStrategy(seed), steps)
	if err != nil {
		return err
	}
	for i, st := range trace {
		fmt.Fprintf(out, "%d: [rule %s] %s\n", i+1, st.Rule, st.State)
	}
	return nil
}
