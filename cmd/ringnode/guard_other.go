//go:build !unix

package main

import "fmt"

// fileGuard requires flock; on platforms without it the -load-guard flag
// is rejected rather than silently weakening the check.
type fileGuard struct{}

func openGuard(path string) (*fileGuard, error) {
	return nil, fmt.Errorf("flock guard unsupported on this platform")
}

func (g *fileGuard) TryEnter() bool { return true }
func (g *fileGuard) Exit()          {}
func (g *fileGuard) Close() error   { return nil }
