//go:build unix

package main

import (
	"os"
	"syscall"
)

// fileGuard is the live cross-process mutual-exclusion check: every node
// process opens the same guard file, and a session holding the distributed
// lock takes a non-blocking exclusive flock on it for the length of its
// critical section. flock state lives in the kernel, keyed by the open
// file description — so if two processes ever believe they are in their
// critical sections at once, exactly one TryEnter fails, and that failure
// is machine-checked evidence of a mutual-exclusion violation no log
// scraping can fake. The in-simulator census checker has no reach across
// process boundaries; this is its live counterpart.
type fileGuard struct {
	f *os.File
}

func openGuard(path string) (*fileGuard, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &fileGuard{f: f}, nil
}

// TryEnter takes the exclusive lock without blocking; false reports a
// conflict (another process is inside its critical section).
func (g *fileGuard) TryEnter() bool {
	return syscall.Flock(int(g.f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB) == nil
}

// Exit releases the lock. Safe to call after a failed TryEnter: unlocking
// an unheld flock is a no-op.
func (g *fileGuard) Exit() {
	syscall.Flock(int(g.f.Fd()), syscall.LOCK_UN)
}

func (g *fileGuard) Close() error { return g.f.Close() }
