package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// freePorts reserves n distinct loopback ports by listening and closing.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestThreeNodeRingEndToEnd runs three ringnode instances in-process on
// loopback: each takes the lock and publishes through the total order.
func TestThreeNodeRingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a real TCP ring")
	}
	addrs := freePorts(t, 3)
	peers := addrs[0] + "," + addrs[1] + "," + addrs[2]

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for id := 0; id < 3; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[id] = run([]string{
				"-id", fmt.Sprint(id),
				"-peers", peers,
				"-locks", "2",
				"-pubs", "2",
				"-wait", "600ms",
				"-timeout", "30s",
			})
		}()
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", id, err)
		}
	}
}

// TestThreeNodeRingWithFaultsAndObserver re-runs the ring with a lossy
// fault plan injected via -faults and step tracing via -observe: the
// protocol's own timeouts must repair the injected loss end to end.
func TestThreeNodeRingWithFaultsAndObserver(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a real TCP ring")
	}
	addrs := freePorts(t, 3)
	peers := addrs[0] + "," + addrs[1] + "," + addrs[2]

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for id := 0; id < 3; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[id] = run([]string{
				"-id", fmt.Sprint(id),
				"-peers", peers,
				"-locks", "1",
				"-pubs", "1",
				"-wait", "600ms",
				"-timeout", "30s",
				"-observe",
				"-faults", fmt.Sprintf(`{"seed":%d,"drop_cheap":0.1,"jitter_prob":0.2,"jitter_max":2}`, 40+id),
			})
		}()
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", id, err)
		}
	}
}

func TestRunArgValidation(t *testing.T) {
	if err := run([]string{"-peers", "onlyone:1"}); err == nil {
		t.Error("single peer must fail")
	}
	if err := run([]string{"-id", "9", "-peers", "a:1,b:2"}); err == nil {
		t.Error("id out of range must fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag must fail")
	}
	if err := run([]string{"-peers", "a:1,b:2", "-faults", "{not json"}); err == nil {
		t.Error("malformed -faults must fail")
	}
	// Pause faults need simulated time; the live path must reject them
	// before it ever touches the network.
	err := run([]string{"-peers", "a:1,b:2", "-faults",
		`{"pauses":[{"node":0,"at":1,"dur":5}]}`})
	if err == nil || !strings.Contains(err.Error(), "pauses") {
		t.Errorf("pause plan accepted: %v", err)
	}
}

// TestThreeNodeRingServesMetrics runs the ring with -metrics-addr and
// scrapes each node's live /metrics and /healthz mid-run.
func TestThreeNodeRingServesMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a real TCP ring")
	}
	addrs := freePorts(t, 3)
	peers := addrs[0] + "," + addrs[1] + "," + addrs[2]
	maddrs := freePorts(t, 3)

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for id := 0; id < 3; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[id] = run([]string{
				"-id", fmt.Sprint(id),
				"-peers", peers,
				"-locks", "2",
				"-pubs", "1",
				"-wait", "1500ms",
				"-timeout", "30s",
				"-metrics-addr", maddrs[id],
			})
		}()
	}

	// Scrape each node while it sits in its settle window.
	for id, maddr := range maddrs {
		var body string
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get("http://" + maddr + "/metrics")
			if err == nil {
				data, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr == nil && resp.StatusCode == http.StatusOK {
					body = string(data)
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d metrics never came up at %s: %v", id, maddr, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		for _, want := range []string{
			`adaptivetoken_messages_total{kind="token"}`,
			"# TYPE adaptivetoken_responsiveness_time_units histogram",
			fmt.Sprintf(`adaptivetoken_node_info{node="%d"} 1`, id),
		} {
			if !strings.Contains(body, want) {
				t.Errorf("node %d /metrics missing %q", id, want)
			}
		}
		resp, err := http.Get("http://" + maddr + "/healthz")
		if err != nil {
			t.Fatalf("node %d healthz: %v", id, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("node %d healthz status %d", id, resp.StatusCode)
		}
	}

	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", id, err)
		}
	}
}
