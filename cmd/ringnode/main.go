// Command ringnode runs one live member of an adaptive token-passing ring
// over TCP. Start N processes with the same -peers list (comma-separated
// host:port, index = ring position) and distinct -id values; the node with
// -id 0 bootstraps the token. Each node then exercises the ring: it takes
// the distributed lock -locks times and publishes -pubs totally ordered
// messages, printing what it delivers.
//
// Example, three terminals:
//
//	ringnode -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	ringnode -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	ringnode -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// With -metrics-addr each node also serves live observability over HTTP:
// Prometheus metrics on /metrics, a liveness probe on /healthz, and the Go
// profiling handlers under /debug/pprof/.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adaptivetoken/internal/core"
	"adaptivetoken/internal/faults"
	"adaptivetoken/internal/host"
	"adaptivetoken/internal/protocol"
	"adaptivetoken/internal/tobcast"
	"adaptivetoken/internal/transport"
)

// traceObserver logs every state-machine step and injected fault of this
// node's host to stderr — the live counterpart of the simulator's trace
// output, attached with -observe.
type traceObserver struct {
	id int
}

func (o traceObserver) OnStep(s host.Step) {
	switch s.Kind {
	case host.StepDeliver:
		fmt.Fprintf(os.Stderr, "[node %d] t=%-6d %-9s %s from %d\n",
			o.id, s.At, s.Kind, s.Msg.Kind, s.Msg.From)
	case host.StepTimer:
		fmt.Fprintf(os.Stderr, "[node %d] t=%-6d %-9s %v\n", o.id, s.At, s.Kind, s.Timer)
	default:
		fmt.Fprintf(os.Stderr, "[node %d] t=%-6d %-9s\n", o.id, s.At, s.Kind)
	}
}

func (o traceObserver) OnFault(f host.FaultEvent) {
	fmt.Fprintf(os.Stderr, "[node %d] t=%-6d FAULT %-6s %s\n", o.id, f.At, f.Kind, f.Msg.Kind)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ringnode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ringnode", flag.ContinueOnError)
	var (
		id      = fs.Int("id", 0, "this node's ring position")
		peers   = fs.String("peers", "", "comma-separated host:port list, index = position")
		locks   = fs.Int("locks", 3, "critical sections to enter")
		pubs    = fs.Int("pubs", 3, "totally ordered messages to publish")
		wait    = fs.Duration("wait", 3*time.Second, "settle time before and after the workload")
		timeout = fs.Duration("timeout", 60*time.Second, "per-operation timeout")
		observe = fs.Bool("observe", false, "log every protocol step and fault to stderr")
		metrics = fs.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this host:port (:0 picks a free port)")
		shardID = fs.Int("shard", -1, "shard id label for metrics and traces when this ring is one shard of a sharded deployment (-1 = unsharded)")
		faultsJ = fs.String("faults", "", "fault plan as JSON (e.g. '{\"seed\":7,\"drop_cheap\":0.2}'); pauses are simulation-only")

		load        = fs.Bool("load", false, "run the open-loop client load generator instead of the demo workload")
		loadRate    = fs.Float64("load-rate", 20, "mean client arrivals per second on this node")
		loadPattern = fs.String("load-pattern", "poisson", "arrival process: poisson or bursty (on/off MMPP at the same long-run rate)")
		loadDur     = fs.Duration("load-duration", 10*time.Second, "load window length")
		loadHold    = fs.Duration("load-hold", 2*time.Millisecond, "critical-section hold per client session")
		loadTimeout = fs.Duration("load-timeout", 30*time.Second, "per-session acquire timeout (0 = unbounded)")
		loadSeed    = fs.Uint64("load-seed", 1, "arrival schedule seed (the node id is mixed in per node)")
		loadGuard   = fs.String("load-guard", "", "shared flock guard file: live cross-process mutual-exclusion check")
		waitStart   = fs.Bool("wait-start", false, "wait for 'start' on stdin before the load; print LOAD_DONE and wait for 'exit' after it")
		tpQueue     = fs.Int("transport-queue", 0, "bounded per-peer outbound queue length (0 = transport default)")
		tpPolicy    = fs.String("transport-policy", "", "transport backpressure policy: drop or block (empty = default)")
		recovery    = fs.Int("recovery", 0, "token-loss recovery timeout in protocol time units (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := strings.Split(*peers, ",")
	if len(addrs) < 2 || *id < 0 || *id >= len(addrs) {
		return fmt.Errorf("need -peers with ≥2 addresses and -id within range")
	}

	var opts []core.Option
	if *faultsJ != "" {
		var plan faults.Plan
		if err := json.Unmarshal([]byte(*faultsJ), &plan); err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		opts = append(opts, core.WithFaults(plan))
	}
	if *observe {
		opts = append(opts, core.WithObserver(traceObserver{id: *id}))
	}
	if *metrics != "" {
		opts = append(opts, core.WithMetricsAddr(*metrics))
	}
	if *shardID >= 0 {
		opts = append(opts, core.WithShard(*shardID))
	}
	if *tpQueue > 0 || *tpPolicy != "" {
		var topts transport.Options
		topts.QueueLen = *tpQueue
		if *tpPolicy != "" {
			pol, err := transport.ParsePolicy(*tpPolicy)
			if err != nil {
				return err
			}
			topts.Policy = pol
		}
		opts = append(opts, core.WithTransportOptions(topts))
	}
	if *recovery > 0 {
		opts = append(opts, core.WithRecovery(protocol.Time(*recovery)))
	}

	if *load {
		return runLoad(loadParams{
			id:       *id,
			addrs:    addrs,
			rate:     *loadRate,
			pattern:  *loadPattern,
			duration: *loadDur,
			hold:     *loadHold,
			timeout:  *loadTimeout,
			settle:   *wait,
			seed:     *loadSeed,
			guard:    *loadGuard,
			wait:     *waitStart,
			opts:     opts,
		})
	}

	ln, err := core.NewLiveNode(*id, addrs, *id == 0, opts...)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("started %s (ring of %d)\n", ln, len(addrs))
	if addr := ln.MetricsAddr(); addr != "" {
		fmt.Printf("metrics at http://%s/metrics (pprof under /debug/pprof/)\n", addr)
	}

	ln.Broadcaster.Subscribe(func(e tobcast.Entry) {
		fmt.Printf("  delivered #%d from node %d: %s\n", e.Seq, e.Node, e.Payload)
	})

	// Let peers come up.
	time.Sleep(*wait)

	for i := 0; i < *locks; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		start := time.Now()
		if err := ln.Mutex.Lock(ctx); err != nil {
			cancel()
			return fmt.Errorf("lock %d: %w", i, err)
		}
		fmt.Printf("lock %d acquired after %v\n", i, time.Since(start).Round(time.Millisecond))
		time.Sleep(50 * time.Millisecond) // critical section
		if err := ln.Mutex.Unlock(); err != nil {
			cancel()
			return err
		}
		cancel()
	}

	for i := 0; i < *pubs; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		seq, err := ln.Broadcaster.Publish(ctx, fmt.Sprintf("hello %d from node %d", i, *id))
		cancel()
		if err != nil {
			return fmt.Errorf("publish %d: %w", i, err)
		}
		fmt.Printf("published #%d\n", seq)
	}

	// Give deliveries time to land everywhere before exiting.
	time.Sleep(*wait)
	fmt.Printf("done: delivered %d totally ordered messages\n", ln.Broadcaster.Delivered())
	fmt.Println(ln.Runtime.Stats())
	return nil
}
