package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"adaptivetoken/internal/core"
	"adaptivetoken/internal/loadgen"
	"adaptivetoken/internal/telemetry"
)

// loadParams collects the -load* flag values.
type loadParams struct {
	id       int
	addrs    []string
	rate     float64
	pattern  string
	duration time.Duration
	hold     time.Duration
	timeout  time.Duration
	settle   time.Duration
	seed     uint64
	guard    string
	wait     bool // -wait-start: stdin-coordinated start/exit
	opts     []core.Option
}

// loadDone is the machine-readable completion record printed as
// "LOAD_DONE {json}" on stdout — the orchestrator's per-node summary.
// Latency distributions travel via /metrics (scraped before "exit"), not
// here: the histograms merge cluster-wide, the counts cross-check them.
type loadDone struct {
	Node        int   `json:"node"`
	Issued      int64 `json:"issued"`
	Completed   int64 `json:"completed"`
	Errors      int64 `json:"errors"`
	Shed        int64 `json:"shed"`
	Late        int64 `json:"late"`
	MaxInFlight int64 `json:"max_in_flight"`
	Violations  int64 `json:"violations"`
	LatencyP50  int64 `json:"latency_p50_ms"`
	LatencyP99  int64 `json:"latency_p99_ms"`
}

// loadReporter publishes the load generator's state through the node's
// /metrics endpoint (core.WithExtraMetrics). Counters are zero until the
// run finishes; the orchestrator scrapes after LOAD_DONE, so it always
// sees the final state.
type loadReporter struct {
	mu         sync.Mutex
	rep        *loadgen.Report
	violations atomic.Int64
}

func (lr *loadReporter) write(p *telemetry.PromWriter) {
	lr.mu.Lock()
	rep := lr.rep
	lr.mu.Unlock()
	var r loadgen.Report
	if rep != nil {
		r = *rep
	}
	p.Counter("adaptivetoken_load_sessions_total",
		"Client sessions issued by the open-loop load generator.", float64(r.Issued))
	p.Counter("adaptivetoken_load_completed_total",
		"Client sessions that acquired, held and released the lock.", float64(r.Completed))
	p.Counter("adaptivetoken_load_errors_total",
		"Client sessions whose acquire failed.", float64(r.Errors))
	p.Counter("adaptivetoken_load_shed_total",
		"Arrivals shed at the in-flight cap.", float64(r.Shed))
	p.Counter("adaptivetoken_load_late_total",
		"Arrivals issued at least one unit behind schedule.", float64(r.Late))
	p.Counter("adaptivetoken_load_guard_violations_total",
		"Cross-process flock guard conflicts observed inside critical sections.",
		float64(lr.violations.Load()))
	p.Histogram("adaptivetoken_load_latency_ms",
		"Scheduled-arrival to release latency of client sessions, milliseconds.", &r.Latency)
	p.Histogram("adaptivetoken_load_acquire_ms",
		"Scheduled-arrival to acquire latency of client sessions, milliseconds.", &r.Acquire)
}

// guardedLocker wraps the distributed mutex with the cross-process flock
// guard: while a session believes it is inside the critical section, the
// guard file must be exclusively flockable — a conflict means two
// processes are in their critical sections at once, a live
// mutual-exclusion (census) violation.
type guardedLocker struct {
	inner      loadgen.Locker
	guard      *fileGuard
	violations *atomic.Int64
}

func (g *guardedLocker) Lock(ctx context.Context) error {
	if err := g.inner.Lock(ctx); err != nil {
		return err
	}
	if !g.guard.TryEnter() {
		g.violations.Add(1)
	}
	return nil
}

func (g *guardedLocker) Unlock() error {
	g.guard.Exit()
	return g.inner.Unlock()
}

// runLoad is the -load entry point: start the node, coordinate with the
// orchestrator over stdin/stdout, generate the load, publish the outcome,
// and fail loudly on guard violations or leaked timers.
func runLoad(p loadParams) error {
	lr := &loadReporter{}
	opts := append(p.opts, core.WithExtraMetrics(lr.write))
	ln, err := core.NewLiveNode(p.id, p.addrs, p.id == 0, opts...)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			ln.Close()
		}
	}()
	fmt.Printf("started %s (ring of %d, load mode)\n", ln, len(p.addrs))
	if addr := ln.MetricsAddr(); addr != "" {
		fmt.Printf("metrics at http://%s/metrics\n", addr)
	}

	var arrivals loadgen.Arrivals
	switch p.pattern {
	case "poisson", "":
		arrivals = loadgen.Poisson{Rate: p.rate}
	case "bursty":
		// Same long-run rate, 10% duty cycle: 10× bursts for ~100ms
		// separated by ~900ms silences.
		arrivals = &loadgen.OnOff{OnRate: 10 * p.rate, MeanOn: 0.1, MeanOff: 0.9}
	default:
		return fmt.Errorf("unknown -load-pattern %q (poisson|bursty)", p.pattern)
	}

	stdin := bufio.NewScanner(os.Stdin)
	if p.wait {
		if !awaitLine(stdin, "start") {
			return fmt.Errorf("stdin closed before start signal")
		}
	}

	var lk loadgen.Locker = ln.Mutex
	var guard *fileGuard
	if p.guard != "" {
		guard, err = openGuard(p.guard)
		if err != nil {
			return fmt.Errorf("-load-guard: %w", err)
		}
		defer guard.Close()
		lk = &guardedLocker{inner: lk, guard: guard, violations: &lr.violations}
	}

	// Seed mixing: node i draws an independent stream; the cluster-wide
	// superposition of per-node Poisson processes is again Poisson.
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Arrivals:       arrivals,
		Seed:           p.seed + uint64(p.id)*0x9e3779b97f4a7c15,
		Duration:       p.duration,
		Hold:           p.hold,
		MaxInFlight:    64,
		AcquireTimeout: p.timeout,
	}, lk)
	if err != nil {
		return err
	}
	lr.mu.Lock()
	lr.rep = rep
	lr.mu.Unlock()

	done := loadDone{
		Node:        p.id,
		Issued:      rep.Issued,
		Completed:   rep.Completed,
		Errors:      rep.Errors,
		Shed:        rep.Shed,
		Late:        rep.Late,
		MaxInFlight: rep.MaxInFlight,
		Violations:  lr.violations.Load(),
		LatencyP50:  rep.Latency.Quantile(0.5),
		LatencyP99:  rep.Latency.Quantile(0.99),
	}
	buf, _ := json.Marshal(done)
	fmt.Printf("LOAD_DONE %s\n", buf)

	if p.wait {
		// Keep /metrics alive until the orchestrator scraped and says exit.
		awaitLine(stdin, "exit")
	} else if p.settle > 0 {
		// Uncoordinated runs: linger so slower peers can finish their
		// in-flight sessions against a complete ring before this node
		// disappears.
		time.Sleep(p.settle)
	}
	closed = true
	if err := ln.Close(); err != nil {
		return err
	}
	if n := ln.Runtime.PendingTimers(); n != 0 {
		return fmt.Errorf("%d timers still armed after shutdown", n)
	}
	if v := lr.violations.Load(); v != 0 {
		return fmt.Errorf("%d cross-process mutual-exclusion violations", v)
	}
	return nil
}

// awaitLine reads stdin until the expected line (or EOF — treated as the
// signal, so manual runs without an orchestrator don't hang forever).
func awaitLine(sc *bufio.Scanner, want string) bool {
	for sc.Scan() {
		if sc.Text() == want {
			return true
		}
	}
	return sc.Err() == nil && want == "exit" // bare EOF is an implicit exit, never an implicit start
}
