package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRunTortureSmoke runs a narrow torture sweep through the CLI and
// checks the progress/summary surface.
func TestRunTortureSmoke(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-torture", "-torture-seeds", "1",
		"-torture-mix", "clean,lossy", "-torture-variants", "ring,binsearch",
		"-torture-requests", "8"}, &sb)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "torture: 4 scenarios, 0 failures") {
		t.Errorf("summary missing:\n%s", out)
	}
	if !strings.Contains(out, "ok   ring") || !strings.Contains(out, "ok   binsearch") {
		t.Errorf("per-scenario lines missing:\n%s", out)
	}
}

// TestRunTortureLiveSmoke sweeps the live scenario family — real
// concurrent runtimes over the channel transport — through the CLI.
func TestRunTortureLiveSmoke(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-torture", "-torture-seeds", "1",
		"-torture-mix", "live-clean,live-lossy", "-torture-variants", "linear",
		"-torture-requests", "6"}, &sb)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "torture: 2 scenarios, 0 failures") {
		t.Errorf("summary missing:\n%s", out)
	}
	if !strings.Contains(out, "ok   linear") {
		t.Errorf("per-scenario lines missing:\n%s", out)
	}
}

// TestRunTortureBadMix: an unknown mix fails with a diagnostic listing the
// valid ones.
func TestRunTortureBadMix(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-torture", "-torture-mix", "nope"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unknown mix") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunReplayMissingArtifact: -replay of a nonexistent path fails cleanly.
func TestRunReplayMissingArtifact(t *testing.T) {
	var sb strings.Builder
	path := filepath.Join(t.TempDir(), "nope.json")
	if err := run([]string{"-replay", path}, &sb); err == nil {
		t.Fatal("missing artifact accepted")
	}
}
