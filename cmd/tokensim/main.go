// Command tokensim runs the simulation experiments that reproduce the
// paper's evaluation (Figures 9 and 10) and the §4.4 ablations, printing
// the same series the paper plots.
//
// Usage:
//
//	tokensim -exp fig9                # one experiment (see -list)
//	tokensim -exp all                 # everything
//	tokensim -exp fig10 -csv          # CSV instead of a table
//	tokensim -exp fig9 -paper         # paper-scale runs (slow)
//	tokensim -exp fig9 -requests 5000 # custom scale
//	tokensim -exp fig9 -parallel 4    # worker-pool size (0 = GOMAXPROCS)
//	tokensim -exp fig9 -paper -baseline -benchjson BENCH_baseline.json
//	                                  # sequential-vs-parallel perf record
//	tokensim -exp fig9big -nodes 20000 # fig9 shape swept to big rings (default 1e5)
//	tokensim -exp fig9 -scheduler heap # reference 4-ary-heap scheduler
//	tokensim -exp fig9 -paper -baseline -big -benchjson BENCH_wheel.json
//	                                  # timing-wheel record + N=1e5 scaling pass
//	tokensim -exp fig9 -cpuprofile cpu.pprof -memprofile mem.pprof
//	tokensim -shards 8                # sharded scaling pass -> BENCH_shard.json
//	tokensim -shards 8 -baseline -big -nodes 1000000 -benchjson BENCH_par.json
//	                                  # sequential-vs-parallel shard record +
//	                                  # fig9big peak-heap pass to N=1e6
//	tokensim -trace out.json           # traced fig9-style run -> Perfetto JSON
//	tokensim -trace out.json -benchjson rec.json
//	                                  # attach the timeline series to the record
//	tokensim -torture                 # fault-injection sweep (see -torture-*)
//	tokensim -torture -artifact-dir artifacts
//	                                  # persist shrunk failure artifacts
//	tokensim -replay artifacts/torture-ring-lossy-seed3.json
//	                                  # re-run a recorded counterexample
//
// Runs are deterministic per seed at every parallelism level: each
// simulation owns a private engine and RNG, so -parallel changes only wall
// time, never the tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"adaptivetoken/internal/bench"
	"adaptivetoken/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tokensim:", err)
		os.Exit(1)
	}
}

// phase is the measured half of a benchmark record: one full experiment
// pass at a fixed parallelism.
type phase struct {
	Parallelism  int     `json:"parallelism"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	Mallocs      uint64  `json:"mallocs"`
	// BytesPerEvent and MallocsPerEvent are the allocation intensity of
	// the pass: heap traffic divided by discrete events executed. These
	// are what the allocation-regression gate budgets (see
	// internal/bench/alloc_budget.json and EXPERIMENTS.md).
	BytesPerEvent   float64             `json:"bytes_per_event"`
	MallocsPerEvent float64             `json:"mallocs_per_event"`
	Stats           bench.StatsSnapshot `json:"stats"`
}

// record is the machine-readable benchmark artifact (-benchjson). With
// -baseline it holds both the sequential oracle pass and the parallel pass
// plus their speedup; otherwise only Parallel is set.
type record struct {
	Experiment      string  `json:"experiment"`
	Seed            uint64  `json:"seed"`
	Requests        int     `json:"requests"`
	MaxTime         int64   `json:"max_time"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Scheduler       string  `json:"scheduler"`
	Sequential      *phase  `json:"sequential,omitempty"`
	Parallel        phase   `json:"parallel"`
	Speedup         float64 `json:"speedup,omitempty"`
	TablesIdentical bool    `json:"tables_identical"`
	// Fig9Big carries the -big scaling pass: the fig9big experiment run to
	// Fig9BigNodes ring positions after the headline phases.
	Fig9Big      *phase `json:"fig9big,omitempty"`
	Fig9BigNodes int    `json:"fig9big_nodes,omitempty"`
	// Trace carries the traced run's digest and sim-time series (-trace).
	Trace *bench.TraceSummary `json:"trace,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tokensim", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "fig9", "experiment id, or \"all\"")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		csv        = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		paper      = fs.Bool("paper", false, "paper-scale runs (≥1000 rounds per point; slow)")
		seed       = fs.Uint64("seed", 1, "random seed (0 is a valid seed)")
		requests   = fs.Int("requests", 0, "requests per run (0 = preset default)")
		parallel   = fs.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		baseline   = fs.Bool("baseline", false, "run sequentially and in parallel, verify identical tables, record speedup")
		big        = fs.Bool("big", false, "with -baseline: append a fig9big scaling pass (N to 1e5) to the record")
		nodes      = fs.Int("nodes", 0, "override the largest ring of the fig9big sweep (0 = 100000)")
		scheduler  = fs.String("scheduler", "wheel", "event scheduler: wheel (timing wheel) or heap (reference)")
		shards     = fs.Int("shards", 0, "run the sharded scaling pass up to this many shards (power of two) and write BENCH_shard.json")
		benchjson  = fs.String("benchjson", "", "write a machine-readable benchmark record (JSON) to this file")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file")
		trace      = fs.String("trace", "", "run one traced fig9-style run and write Chrome trace_event JSON here")

		tf tortureFlags
	)
	fs.BoolVar(&tf.enabled, "torture", false, "run the fault-injection torture sweep instead of an experiment")
	fs.IntVar(&tf.seeds, "torture-seeds", 0, "torture seeds per variant×mix (0 = default 9)")
	fs.IntVar(&tf.requests, "torture-requests", 0, "torture requests per scenario (0 = default)")
	fs.IntVar(&tf.n, "torture-n", 0, "torture cluster size (0 = default)")
	fs.StringVar(&tf.mixes, "torture-mix", "", "comma-separated fault mixes (default: all safe mixes)")
	fs.StringVar(&tf.variants, "torture-variants", "", "comma-separated variants (default: ring,linear,binsearch)")
	fs.StringVar(&tf.artifactDir, "artifact-dir", "", "write shrunk replayable failure artifacts here")
	fs.StringVar(&tf.replay, "replay", "", "replay a failure artifact (JSON path) and verify it reproduces")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if tf.replay != "" {
		return runReplay(tf.replay, out)
	}
	if tf.enabled {
		return runTorture(tf, out)
	}

	if *list {
		for _, id := range bench.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}

	opts := bench.DefaultOptions()
	if *paper {
		opts = bench.PaperOptions()
	}
	opts.Seed = *seed
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			opts.SeedSet = true // an explicit -seed 0 stays 0
		}
	})
	if *requests > 0 {
		opts.Requests = *requests
		opts.MaxTime = sim.Time(*requests) * 10_000
	}
	opts.Parallelism = *parallel
	opts.Nodes = *nodes
	sched, err := sim.ParseScheduler(*scheduler)
	if err != nil {
		return err
	}
	opts.Scheduler = sched
	if *exp == "fig9big" {
		// The scaling sweep records its peak live heap (bytes_per_node);
		// the reading needs runs that don't overlap, so keep it sequential.
		opts.MemRecord = true
		opts.Parallelism = 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tokensim: memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tokensim: memprofile:", err)
		}
	}()

	if *trace != "" {
		return runTrace(*trace, opts, *benchjson, out)
	}

	if *shards > 0 {
		if *baseline {
			return runShardsBaseline(*shards, opts, *benchjson, *big, out)
		}
		return runShards(*shards, opts, *benchjson, out)
	}

	if *baseline {
		return runBaseline(*exp, opts, *benchjson, *big, out)
	}

	text, ph, err := measure(*exp, opts, *csv)
	if err != nil {
		return err
	}
	fmt.Fprint(out, text)
	if *benchjson != "" {
		rec := record{
			Experiment:      *exp,
			Seed:            opts.Seed,
			Requests:        opts.Requests,
			MaxTime:         int64(opts.MaxTime),
			GOMAXPROCS:      runtime.GOMAXPROCS(0),
			Scheduler:       opts.Scheduler.String(),
			Parallel:        ph,
			TablesIdentical: true, // single pass; nothing to diverge
		}
		if err := writeJSON(*benchjson, rec); err != nil {
			return err
		}
	}
	return nil
}

// runTrace executes one traced run (internal/bench.TraceRun), writes the
// Chrome/Perfetto timeline to path, and — with -benchjson — attaches the
// run digest and sampled sim-time series to the benchmark record.
func runTrace(path string, opts bench.Options, jsonPath string, out io.Writer) error {
	topts := bench.TraceOptions{
		Seed:     opts.Seed,
		Requests: opts.Requests,
		MaxTime:  opts.MaxTime,
	}
	res, tr, err := bench.TraceRun(topts)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := topts.WriteTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	sum := topts.Summarize(res, tr)
	fmt.Fprintf(out, "trace: %s n=%d, %d requests, %d grants, responsiveness mean %.2f p99 %.2f\n",
		sum.Variant, sum.N, res.Issued, res.Grants,
		res.Responsiveness.Mean, res.Responsiveness.P99)
	fmt.Fprintf(out, "trace: %d records (%d dropped), %d series points -> %s (load in https://ui.perfetto.dev)\n",
		sum.Records, sum.DroppedRecords, len(sum.Series), path)
	if jsonPath != "" {
		rec := record{
			Experiment: "trace",
			Seed:       opts.Seed,
			Requests:   opts.Requests,
			MaxTime:    int64(opts.MaxTime),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Trace:      &sum,
		}
		if err := writeJSON(jsonPath, rec); err != nil {
			return err
		}
	}
	return nil
}

// runBaseline runs the experiment twice — sequentially (the oracle) and at
// the configured parallelism — asserts byte-identical tables, and writes
// the combined perf record. This is how BENCH_baseline.json is generated
// and regenerated; see EXPERIMENTS.md.
func runBaseline(exp string, opts bench.Options, jsonPath string, big bool, out io.Writer) error {
	seqOpts := opts
	seqOpts.Parallelism = 1
	seqText, seqPhase, err := measure(exp, seqOpts, false)
	if err != nil {
		return err
	}
	parText, parPhase, err := measure(exp, opts, false)
	if err != nil {
		return err
	}
	identical := seqText == parText
	rec := record{
		Experiment:      exp,
		Seed:            opts.Seed,
		Requests:        opts.Requests,
		MaxTime:         int64(opts.MaxTime),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Scheduler:       opts.Scheduler.String(),
		Sequential:      &seqPhase,
		Parallel:        parPhase,
		TablesIdentical: identical,
	}
	if parPhase.WallSeconds > 0 {
		rec.Speedup = seqPhase.WallSeconds / parPhase.WallSeconds
	}
	if big {
		_, bigPhase, err := measure("fig9big", opts, false)
		if err != nil {
			return fmt.Errorf("fig9big: %w", err)
		}
		rec.Fig9Big = &bigPhase
		rec.Fig9BigNodes = opts.Nodes
		if rec.Fig9BigNodes == 0 {
			rec.Fig9BigNodes = 100_000
		}
		fmt.Fprintf(out, "fig9big: n to %d, %d runs, %d events in %.2fs (%.0f events/sec)\n",
			rec.Fig9BigNodes, bigPhase.Stats.Runs, bigPhase.Stats.SimEvents,
			bigPhase.WallSeconds, bigPhase.EventsPerSec)
	}
	if jsonPath == "" {
		jsonPath = "BENCH_baseline.json"
	}
	if err := writeJSON(jsonPath, rec); err != nil {
		return err
	}
	fmt.Fprint(out, parText)
	fmt.Fprintf(out, "baseline: scheduler %s, sequential %.2fs, parallel(%d) %.2fs, speedup %.2fx, %s -> %s\n",
		opts.Scheduler, seqPhase.WallSeconds, parPhase.Parallelism, parPhase.WallSeconds, rec.Speedup,
		identicalWord(identical), jsonPath)
	if !identical {
		return fmt.Errorf("parallel tables diverge from the sequential oracle")
	}
	return nil
}

func identicalWord(ok bool) string {
	if ok {
		return "tables identical"
	}
	return "TABLES DIVERGE"
}

// measure renders the experiment (or all of them) once, timing the pass and
// accounting simulation totals and allocations.
func measure(exp string, opts bench.Options, csv bool) (string, phase, error) {
	var stats bench.RunStats
	opts.Stats = &stats
	resolved := opts.Parallelism
	if resolved <= 0 {
		resolved = runtime.GOMAXPROCS(0)
	}

	var sb strings.Builder
	render := func(t bench.Table) {
		if csv {
			sb.WriteString(t.CSV())
		} else {
			sb.WriteString(t.Format())
			sb.WriteByte('\n')
		}
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	if exp == "all" {
		tables, err := bench.All(opts)
		if err != nil {
			return "", phase{}, err
		}
		ids := make([]string, 0, len(tables))
		for id := range tables {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			render(tables[id])
		}
	} else {
		fn, ok := bench.Lookup(exp)
		if !ok {
			return "", phase{}, fmt.Errorf("unknown experiment %q (use -list)", exp)
		}
		tbl, err := fn(opts)
		if err != nil {
			return "", phase{}, err
		}
		render(tbl)
	}

	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	snap := stats.Snapshot()
	ph := phase{
		Parallelism: resolved,
		WallSeconds: wall.Seconds(),
		AllocBytes:  after.TotalAlloc - before.TotalAlloc,
		Mallocs:     after.Mallocs - before.Mallocs,
		Stats:       snap,
	}
	if wall > 0 {
		ph.EventsPerSec = float64(snap.SimEvents) / wall.Seconds()
	}
	if snap.SimEvents > 0 {
		ph.BytesPerEvent = float64(ph.AllocBytes) / float64(snap.SimEvents)
		ph.MallocsPerEvent = float64(ph.Mallocs) / float64(snap.SimEvents)
	}
	return sb.String(), ph, nil
}

// writeJSON writes v as indented JSON to path.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
