// Command tokensim runs the simulation experiments that reproduce the
// paper's evaluation (Figures 9 and 10) and the §4.4 ablations, printing
// the same series the paper plots.
//
// Usage:
//
//	tokensim -exp fig9                # one experiment (see -list)
//	tokensim -exp all                 # everything
//	tokensim -exp fig10 -csv          # CSV instead of a table
//	tokensim -exp fig9 -paper         # paper-scale runs (slow)
//	tokensim -exp fig9 -requests 5000 # custom scale
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"adaptivetoken/internal/bench"
	"adaptivetoken/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tokensim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tokensim", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "fig9", "experiment id, or \"all\"")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		csv      = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		paper    = fs.Bool("paper", false, "paper-scale runs (≥1000 rounds per point; slow)")
		seed     = fs.Uint64("seed", 1, "random seed")
		requests = fs.Int("requests", 0, "requests per run (0 = preset default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range bench.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}

	opts := bench.DefaultOptions()
	if *paper {
		opts = bench.PaperOptions()
	}
	opts.Seed = *seed
	if *requests > 0 {
		opts.Requests = *requests
		opts.MaxTime = sim.Time(*requests) * 10_000
	}

	render := func(t bench.Table) {
		if *csv {
			fmt.Fprint(out, t.CSV())
		} else {
			fmt.Fprintln(out, t.Format())
		}
	}

	if *exp == "all" {
		tables, err := bench.All(opts)
		if err != nil {
			return err
		}
		ids := make([]string, 0, len(tables))
		for id := range tables {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			render(tables[id])
		}
		return nil
	}

	fn, ok := bench.Lookup(*exp)
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", *exp)
	}
	tbl, err := fn(opts)
	if err != nil {
		return err
	}
	render(tbl)
	return nil
}
