package main

import (
	"fmt"
	"io"
	"strings"

	"adaptivetoken/internal/torture"
)

// tortureFlags holds the -torture flag family.
type tortureFlags struct {
	enabled     bool
	seeds       int
	requests    int
	n           int
	mixes       string
	variants    string
	artifactDir string
	replay      string
}

// runTorture sweeps seeds × fault mixes × variants, one progress line per
// scenario, and fails (non-zero exit) if any scenario violates safety,
// liveness or spec conformance. Failures are shrunk to minimal
// counterexamples and written under -artifact-dir for replay.
func runTorture(tf tortureFlags, out io.Writer) error {
	cfg := torture.SweepConfig{
		Seeds:       tf.seeds,
		Requests:    tf.requests,
		N:           tf.n,
		ArtifactDir: tf.artifactDir,
	}
	if tf.mixes != "" {
		cfg.Mixes = strings.Split(tf.mixes, ",")
	}
	if tf.variants != "" {
		cfg.Variants = strings.Split(tf.variants, ",")
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(out, format+"\n", a...)
	}
	res, err := torture.Sweep(cfg, logf)
	if err != nil {
		return err
	}

	// With the default mix/variant selection, also sweep the live scenario
	// family: the same protocols on real concurrent runtimes over the
	// channel transport, conformance-checked through the shared host layer.
	if tf.mixes == "" && tf.variants == "" {
		liveCfg := cfg
		liveCfg.Mixes = torture.SweepLiveMixes()
		liveCfg.Variants = torture.SweepLiveVariants()
		liveRes, err := torture.Sweep(liveCfg, logf)
		if err != nil {
			return err
		}
		res.Scenarios += liveRes.Scenarios
		res.Failures = append(res.Failures, liveRes.Failures...)
		res.Artifacts = append(res.Artifacts, liveRes.Artifacts...)
	}

	fmt.Fprintf(out, "torture: %d scenarios, %d failures\n", res.Scenarios, len(res.Failures))
	for _, p := range res.Artifacts {
		fmt.Fprintf(out, "torture: replay with -replay %s\n", p)
	}
	if len(res.Failures) > 0 {
		return fmt.Errorf("torture: %d of %d scenarios failed", len(res.Failures), res.Scenarios)
	}
	return nil
}

// runReplay re-runs a failure artifact. The replay draws no randomness, so
// a healthy artifact reproduces its recorded violation exactly; an artifact
// that no longer fails (e.g. after a fix) is reported as such and exits
// non-zero, making "does this artifact still bite" scriptable.
func runReplay(path string, out io.Writer) error {
	f, err := torture.LoadArtifact(path)
	if err != nil {
		return err
	}
	acts := len(f.Schedule.Actions)
	for _, s := range f.Shards {
		acts += len(s.Actions)
	}
	fmt.Fprintf(out, "replaying %s/%s seed=%d with %d fault actions\n",
		f.Scenario.Variant, f.Scenario.Mix, f.Scenario.Seed, acts)
	fmt.Fprintf(out, "recorded violation: %s\n", f.Err)
	rep := f.Reproduce()
	if rep.Err == nil {
		return fmt.Errorf("artifact no longer reproduces (fixed?)")
	}
	fmt.Fprintf(out, "reproduced: %v\n", rep.Err)
	return nil
}
