package main

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"adaptivetoken/internal/bench"
)

// shardPhase is one measured point of the sharded scaling pass: the same
// aggregate load served by K independent rings.
type shardPhase struct {
	Shards       int     `json:"shards"`
	WallSeconds  float64 `json:"wall_seconds"`
	SimEvents    int     `json:"sim_events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Grants       int     `json:"grants"`
	Issued       int     `json:"issued"`
	RespMean     float64 `json:"resp_mean"`
	RespP99      float64 `json:"resp_p99"`
	MsgsPerGrant float64 `json:"msgs_per_grant"`
}

// shardRecord is the BENCH_shard.json artifact: the scaling phases plus
// the 1-shard parity gate. TablesIdentical asserts that the K=1 run is
// byte-for-byte the plain unsharded driver run — the same invariant
// BENCH_wheel.json's table check rests on, so the two records describe the
// same baseline.
type shardRecord struct {
	Experiment      string       `json:"experiment"`
	Seed            uint64       `json:"seed"`
	Requests        int          `json:"requests"`
	TotalNodes      int          `json:"total_nodes"`
	MeanGap         float64      `json:"mean_gap"`
	GOMAXPROCS      int          `json:"gomaxprocs"`
	Scheduler       string       `json:"scheduler"`
	Phases          []shardPhase `json:"phases"`
	TablesIdentical bool         `json:"tables_identical"`
}

// runShards executes the -shards pass: the fixed aggregate load of the
// fig9shard experiment served by 1, 2, 4, ... maxShards rings, each count
// timed separately, then the 1-shard parity check against the unsharded
// driver. The record lands in -benchjson (default BENCH_shard.json).
func runShards(maxShards int, opts bench.Options, jsonPath string, out io.Writer) error {
	totalNodes, meanGap := bench.ShardDefaults()
	if maxShards&(maxShards-1) != 0 || maxShards > totalNodes {
		return fmt.Errorf("-shards must be a power of two ≤ %d, got %d", totalNodes, maxShards)
	}

	rec := shardRecord{
		Experiment: "fig9shard",
		Seed:       opts.Seed,
		Requests:   opts.Requests,
		TotalNodes: totalNodes,
		MeanGap:    meanGap,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scheduler:  opts.Scheduler.String(),
	}
	fmt.Fprintf(out, "sharded scaling: %d nodes total, aggregate mean gap %g, %d requests\n",
		totalNodes, meanGap, opts.Requests)
	for k := 1; k <= maxShards; k *= 2 {
		ph, _, err := measureShard(opts, k, totalNodes, meanGap)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", k, err)
		}
		rec.Phases = append(rec.Phases, ph)
		fmt.Fprintf(out, "  shards=%-2d wall %.3fs  %8.0f events/sec  resp mean %.2f p99 %.2f  msgs/grant %.2f\n",
			k, ph.WallSeconds, ph.EventsPerSec, ph.RespMean, ph.RespP99, ph.MsgsPerGrant)
	}

	identical, err := bench.ShardParity(opts, totalNodes, meanGap)
	if err != nil {
		return fmt.Errorf("shard parity: %w", err)
	}
	rec.TablesIdentical = identical

	if jsonPath == "" {
		jsonPath = "BENCH_shard.json"
	}
	if err := writeJSON(jsonPath, rec); err != nil {
		return err
	}
	fmt.Fprintf(out, "shards: 1-shard run vs unsharded driver: %s -> %s\n", identicalWord(identical), jsonPath)
	if !identical {
		return fmt.Errorf("1-shard run diverges from the unsharded driver")
	}
	return nil
}

// measureShard times one RunSharded pass at one shard count, returning the
// recorded phase and the full result (for cross-pass equality checks).
func measureShard(opts bench.Options, shards, totalNodes int, meanGap float64) (shardPhase, bench.ShardResult, error) {
	var stats bench.RunStats
	opts.Stats = &stats
	start := time.Now()
	res, err := bench.RunSharded(opts, shards, totalNodes, meanGap)
	if err != nil {
		return shardPhase{}, res, err
	}
	wall := time.Since(start)
	grants := res.Grants
	if grants == 0 {
		grants = 1
	}
	ph := shardPhase{
		Shards:       shards,
		WallSeconds:  wall.Seconds(),
		SimEvents:    res.SimEvents,
		Grants:       res.Grants,
		Issued:       res.Issued,
		RespMean:     res.Resp.Mean,
		RespP99:      res.Resp.P99,
		MsgsPerGrant: float64(res.TotalMessages) / float64(grants),
	}
	if wall > 0 {
		ph.EventsPerSec = float64(res.SimEvents) / wall.Seconds()
	}
	return ph, res, nil
}

// parPhase is one shard count of the parallel-execution record: the same
// sharded run once on the inline sequential path (Parallel=1, the oracle)
// and once across the full worker pool, with a DeepEqual gate over the
// complete results — per-shard summaries included, not just the headline
// numbers.
type parPhase struct {
	Shards          int        `json:"shards"`
	PoolSize        int        `json:"pool_size"`
	Sequential      shardPhase `json:"sequential"`
	Parallel        shardPhase `json:"parallel"`
	Speedup         float64    `json:"speedup,omitempty"`
	TablesIdentical bool       `json:"tables_identical"`
}

// parRecord is the BENCH_par.json artifact: sequential-vs-parallel shard
// execution at each shard count, plus (with -big) the fig9big scaling pass
// with its peak-heap record. On a 1-CPU host the speedups hover at 1.0× —
// GOMAXPROCS is recorded so readers can tell "no cores" from "no scaling" —
// which is why the perf gate budgets only the sequential floor.
type parRecord struct {
	Experiment      string     `json:"experiment"`
	Seed            uint64     `json:"seed"`
	Requests        int        `json:"requests"`
	TotalNodes      int        `json:"total_nodes"`
	MeanGap         float64    `json:"mean_gap"`
	GOMAXPROCS      int        `json:"gomaxprocs"`
	Scheduler       string     `json:"scheduler"`
	Phases          []parPhase `json:"phases"`
	TablesIdentical bool       `json:"tables_identical"`
	Fig9Big         *phase     `json:"fig9big,omitempty"`
	Fig9BigNodes    int        `json:"fig9big_nodes,omitempty"`
}

// runShardsBaseline executes the -shards -baseline pass behind `make
// bench-par`: every shard count runs twice — Parallel=1 (the sequential
// oracle) and Parallel=K (full pool) — and the record asserts the two
// produce DeepEqual results. With big set, a fig9big pass (sequential, with
// peak-heap recording) is appended, carrying heap_peak/bytes_per_node for
// the largest ring.
func runShardsBaseline(maxShards int, opts bench.Options, jsonPath string, big bool, out io.Writer) error {
	totalNodes, meanGap := bench.ShardDefaults()
	if maxShards&(maxShards-1) != 0 || maxShards > totalNodes {
		return fmt.Errorf("-shards must be a power of two ≤ %d, got %d", totalNodes, maxShards)
	}

	rec := parRecord{
		Experiment:      "fig9shard-par",
		Seed:            opts.Seed,
		Requests:        opts.Requests,
		TotalNodes:      totalNodes,
		MeanGap:         meanGap,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Scheduler:       opts.Scheduler.String(),
		TablesIdentical: true,
	}
	fmt.Fprintf(out, "parallel shard baseline: %d nodes total, aggregate mean gap %g, %d requests, GOMAXPROCS %d\n",
		totalNodes, meanGap, opts.Requests, rec.GOMAXPROCS)
	for k := 1; k <= maxShards; k *= 2 {
		seqOpts := opts
		seqOpts.Parallelism = 1
		seqPh, seqRes, err := measureShard(seqOpts, k, totalNodes, meanGap)
		if err != nil {
			return fmt.Errorf("shards=%d sequential: %w", k, err)
		}
		parOpts := opts
		parOpts.Parallelism = k
		parPh, parRes, err := measureShard(parOpts, k, totalNodes, meanGap)
		if err != nil {
			return fmt.Errorf("shards=%d parallel: %w", k, err)
		}
		ph := parPhase{
			Shards:          k,
			PoolSize:        k,
			Sequential:      seqPh,
			Parallel:        parPh,
			TablesIdentical: reflect.DeepEqual(seqRes, parRes),
		}
		if parPh.WallSeconds > 0 {
			ph.Speedup = seqPh.WallSeconds / parPh.WallSeconds
		}
		rec.Phases = append(rec.Phases, ph)
		rec.TablesIdentical = rec.TablesIdentical && ph.TablesIdentical
		fmt.Fprintf(out, "  shards=%-2d seq %.3fs  par(%d) %.3fs  speedup %.2fx  %8.0f events/sec  %s\n",
			k, seqPh.WallSeconds, k, parPh.WallSeconds, ph.Speedup, parPh.EventsPerSec, identicalWord(ph.TablesIdentical))
	}

	if big {
		bigOpts := opts
		bigOpts.MemRecord = true
		bigOpts.Parallelism = 1
		_, bigPhase, err := measure("fig9big", bigOpts, false)
		if err != nil {
			return fmt.Errorf("fig9big: %w", err)
		}
		rec.Fig9Big = &bigPhase
		rec.Fig9BigNodes = opts.Nodes
		if rec.Fig9BigNodes == 0 {
			rec.Fig9BigNodes = 100_000
		}
		fmt.Fprintf(out, "fig9big: n to %d, %d runs, %d events in %.2fs (%.0f events/sec), peak heap %d B (%.2f B/node at n=%d)\n",
			rec.Fig9BigNodes, bigPhase.Stats.Runs, bigPhase.Stats.SimEvents,
			bigPhase.WallSeconds, bigPhase.EventsPerSec,
			bigPhase.Stats.HeapPeak, bigPhase.Stats.BytesPerNode, bigPhase.Stats.HeapPeakN)
	}

	if jsonPath == "" {
		jsonPath = "BENCH_par.json"
	}
	if err := writeJSON(jsonPath, rec); err != nil {
		return err
	}
	fmt.Fprintf(out, "shards baseline: %s -> %s\n", identicalWord(rec.TablesIdentical), jsonPath)
	if !rec.TablesIdentical {
		return fmt.Errorf("parallel shard results diverge from the sequential oracle")
	}
	return nil
}
