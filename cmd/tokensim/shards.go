package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"adaptivetoken/internal/bench"
)

// shardPhase is one measured point of the sharded scaling pass: the same
// aggregate load served by K independent rings.
type shardPhase struct {
	Shards       int     `json:"shards"`
	WallSeconds  float64 `json:"wall_seconds"`
	SimEvents    int     `json:"sim_events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Grants       int     `json:"grants"`
	Issued       int     `json:"issued"`
	RespMean     float64 `json:"resp_mean"`
	RespP99      float64 `json:"resp_p99"`
	MsgsPerGrant float64 `json:"msgs_per_grant"`
}

// shardRecord is the BENCH_shard.json artifact: the scaling phases plus
// the 1-shard parity gate. TablesIdentical asserts that the K=1 run is
// byte-for-byte the plain unsharded driver run — the same invariant
// BENCH_wheel.json's table check rests on, so the two records describe the
// same baseline.
type shardRecord struct {
	Experiment      string       `json:"experiment"`
	Seed            uint64       `json:"seed"`
	Requests        int          `json:"requests"`
	TotalNodes      int          `json:"total_nodes"`
	MeanGap         float64      `json:"mean_gap"`
	GOMAXPROCS      int          `json:"gomaxprocs"`
	Scheduler       string       `json:"scheduler"`
	Phases          []shardPhase `json:"phases"`
	TablesIdentical bool         `json:"tables_identical"`
}

// runShards executes the -shards pass: the fixed aggregate load of the
// fig9shard experiment served by 1, 2, 4, ... maxShards rings, each count
// timed separately, then the 1-shard parity check against the unsharded
// driver. The record lands in -benchjson (default BENCH_shard.json).
func runShards(maxShards int, opts bench.Options, jsonPath string, out io.Writer) error {
	totalNodes, meanGap := bench.ShardDefaults()
	if maxShards&(maxShards-1) != 0 || maxShards > totalNodes {
		return fmt.Errorf("-shards must be a power of two ≤ %d, got %d", totalNodes, maxShards)
	}

	rec := shardRecord{
		Experiment: "fig9shard",
		Seed:       opts.Seed,
		Requests:   opts.Requests,
		TotalNodes: totalNodes,
		MeanGap:    meanGap,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scheduler:  opts.Scheduler.String(),
	}
	fmt.Fprintf(out, "sharded scaling: %d nodes total, aggregate mean gap %g, %d requests\n",
		totalNodes, meanGap, opts.Requests)
	for k := 1; k <= maxShards; k *= 2 {
		popts := opts
		var stats bench.RunStats
		popts.Stats = &stats
		start := time.Now()
		res, err := bench.RunSharded(popts, k, totalNodes, meanGap)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", k, err)
		}
		wall := time.Since(start)
		grants := res.Grants
		if grants == 0 {
			grants = 1
		}
		ph := shardPhase{
			Shards:       k,
			WallSeconds:  wall.Seconds(),
			SimEvents:    res.SimEvents,
			Grants:       res.Grants,
			Issued:       res.Issued,
			RespMean:     res.Resp.Mean,
			RespP99:      res.Resp.P99,
			MsgsPerGrant: float64(res.TotalMessages) / float64(grants),
		}
		if wall > 0 {
			ph.EventsPerSec = float64(res.SimEvents) / wall.Seconds()
		}
		rec.Phases = append(rec.Phases, ph)
		fmt.Fprintf(out, "  shards=%-2d wall %.3fs  %8.0f events/sec  resp mean %.2f p99 %.2f  msgs/grant %.2f\n",
			k, ph.WallSeconds, ph.EventsPerSec, ph.RespMean, ph.RespP99, ph.MsgsPerGrant)
	}

	identical, err := bench.ShardParity(opts, totalNodes, meanGap)
	if err != nil {
		return fmt.Errorf("shard parity: %w", err)
	}
	rec.TablesIdentical = identical

	if jsonPath == "" {
		jsonPath = "BENCH_shard.json"
	}
	if err := writeJSON(jsonPath, rec); err != nil {
		return err
	}
	fmt.Fprintf(out, "shards: 1-shard run vs unsharded driver: %s -> %s\n", identicalWord(identical), jsonPath)
	if !identical {
		return fmt.Errorf("1-shard run diverges from the unsharded driver")
	}
	return nil
}
