package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunShards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.json")
	var sb strings.Builder
	if err := run([]string{"-shards", "4", "-requests", "400", "-benchjson", path}, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec shardRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	if !rec.TablesIdentical {
		t.Fatal("1-shard parity gate failed")
	}
	if len(rec.Phases) != 3 { // shards 1, 2, 4
		t.Fatalf("phases: %+v", rec.Phases)
	}
	for i, ph := range rec.Phases {
		if ph.Shards != 1<<i || ph.Grants == 0 || ph.SimEvents == 0 {
			t.Errorf("phase %d: %+v", i, ph)
		}
	}
	if !strings.Contains(sb.String(), "tables identical") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestRunShardsRejectsNonPowerOfTwo(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-shards", "3"}, &sb); err == nil {
		t.Fatal("want error for -shards 3")
	}
}
