package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig9", "fig10", "trapgc"} {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("missing %q in list:\n%s", id, sb.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "saturation", "-requests", "64"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Saturation") || !strings.Contains(sb.String(), "binsearch") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "saturation", "-requests", "64", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "n,") {
		t.Errorf("csv output:\n%s", sb.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "nope"}, &sb); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Fatal("bad flag must fail")
	}
}

// TestRunParallelMatchesSequential: -parallel only changes wall time, never
// the rendered tables.
func TestRunParallelMatchesSequential(t *testing.T) {
	var seq, par strings.Builder
	if err := run([]string{"-exp", "fig10", "-requests", "200", "-parallel", "1"}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig10", "-requests", "200", "-parallel", "8"}, &par); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("outputs diverge:\n--- parallel 1\n%s\n--- parallel 8\n%s", seq.String(), par.String())
	}
}

// TestRunSeedZero: an explicit -seed 0 must be honored, not remapped to the
// default seed (regression for Options.withDefaults).
func TestRunSeedZero(t *testing.T) {
	var s0, s1 strings.Builder
	if err := run([]string{"-exp", "tails", "-requests", "200", "-seed", "0"}, &s0); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "tails", "-requests", "200", "-seed", "1"}, &s1); err != nil {
		t.Fatal(err)
	}
	if s0.String() == s1.String() {
		t.Error("-seed 0 produced the same tables as -seed 1; zero seed remapped")
	}
}

// TestRunBenchJSON checks the machine-readable benchmark record.
func TestRunBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	if err := run([]string{"-exp", "saturation", "-requests", "64", "-benchjson", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if rec.Experiment != "saturation" || rec.Parallel.WallSeconds <= 0 ||
		rec.Parallel.Stats.Runs != 6 || rec.Parallel.Stats.SimEvents == 0 {
		t.Errorf("record = %+v", rec)
	}
}

// TestRunBaseline exercises the sequential-vs-parallel baseline mode end to
// end: the record must carry both phases and certify identical tables.
func TestRunBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	var sb strings.Builder
	err := run([]string{"-exp", "saturation", "-requests", "64",
		"-parallel", "4", "-baseline", "-benchjson", path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "tables identical") {
		t.Errorf("baseline output:\n%s", sb.String())
	}
	var rec record
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Sequential == nil || rec.Sequential.Parallelism != 1 ||
		rec.Parallel.Parallelism != 4 || !rec.TablesIdentical || rec.Speedup <= 0 {
		t.Errorf("record = %+v", rec)
	}
}

// TestRunProfiles smoke-tests -cpuprofile/-memprofile file emission.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var sb strings.Builder
	if err := run([]string{"-exp", "saturation", "-requests", "64",
		"-cpuprofile", cpu, "-memprofile", mem}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var sb strings.Builder
	if err := run([]string{"-exp", "all", "-requests", "150"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Figure 9", "Figure 10", "trap GC", "Theorem 3"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("missing %q in -exp all output", frag)
		}
	}
}

// TestRunTrace: -trace writes loadable Chrome trace_event JSON and attaches
// the digest plus sim-time series to the bench record.
func TestRunTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	recPath := filepath.Join(dir, "rec.json")
	var sb strings.Builder
	if err := run([]string{"-trace", tracePath, "-requests", "200", "-seed", "5",
		"-benchjson", recPath}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "perfetto") {
		t.Errorf("trace summary missing viewer hint:\n%s", sb.String())
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"responsiveness", "wait", "hop", "grant", "ready", "in-flight", "holder"} {
		if !names[want] {
			t.Errorf("trace missing %q events", want)
		}
	}

	recData, err := os.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Experiment string `json:"experiment"`
		Trace      *struct {
			Grants int64 `json:"grants"`
			Series []struct {
				T int64 `json:"t"`
			} `json:"series"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(recData, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Experiment != "trace" || rec.Trace == nil {
		t.Fatalf("record %s missing trace digest", recData[:80])
	}
	if rec.Trace.Grants == 0 || len(rec.Trace.Series) == 0 {
		t.Fatalf("empty trace digest: %+v", rec.Trace)
	}
}
