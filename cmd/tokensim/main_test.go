package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig9", "fig10", "trapgc"} {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("missing %q in list:\n%s", id, sb.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "saturation", "-requests", "64"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Saturation") || !strings.Contains(sb.String(), "binsearch") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "saturation", "-requests", "64", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "n,") {
		t.Errorf("csv output:\n%s", sb.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "nope"}, &sb); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Fatal("bad flag must fail")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var sb strings.Builder
	if err := run([]string{"-exp", "all", "-requests", "150"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Figure 9", "Figure 10", "trap GC", "Theorem 3"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("missing %q in -exp all output", frag)
		}
	}
}
